//! Crash-safe on-disk store: checksummed headers, atomic publish, and
//! detect-corrupt → quarantine → rebuild recovery.
//!
//! Every file the workspace persists across restarts (the serve tier's
//! tuning table and cache-warmup snapshot, the generated-graph cache) goes
//! through this one layer instead of hand-rolled `fs::write` calls, so the
//! failure semantics are uniform:
//!
//! * **Torn writes cannot happen.** [`write`] publishes via
//!   write-to-temp + rename; a reader sees the old file or the new one,
//!   never a prefix.
//! * **Corruption cannot be served.** Payloads are framed by a one-line
//!   header carrying the format magic, a version, the payload length, and
//!   an FNV-1a checksum. [`read`] verifies all four; a truncated,
//!   bit-flipped, or partially overwritten file is a structured
//!   [`StoreError::Corrupt`], never garbage data.
//! * **Corruption is evidence, not garbage.** [`read_or_quarantine`] moves
//!   a corrupt file aside to `<name>.corrupt` (instead of silently
//!   overwriting it) so an operator can inspect what happened, then lets
//!   the caller rebuild from scratch.
//!
//! The header is a single ASCII line so checksummed JSON files stay
//! greppable: `#mwstore v1 len=<decimal> fnv=<16 hex digits>\n` followed by
//! the raw payload bytes (text or binary).

use crate::digest::Fnv64;
use std::path::{Path, PathBuf};

/// First bytes of every store file.
const MAGIC: &str = "#mwstore";
/// Format version this module writes and accepts.
const VERSION: u32 = 1;

/// Why a read failed.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not exist (a fresh start, not a failure).
    Missing,
    /// Underlying IO failure (permissions, disk).
    Io(std::io::Error),
    /// The file exists but its header or payload is damaged. The message
    /// names the first check that failed.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Missing => write!(f, "file missing"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store file: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Frame `payload` with the checksummed header.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let checksum = Fnv64::new().bytes(payload).finish();
    let mut out = format!(
        "{MAGIC} v{VERSION} len={} fnv={:016x}\n",
        payload.len(),
        checksum
    )
    .into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Verify a framed file image and return the payload.
pub fn decode(data: &[u8]) -> Result<Vec<u8>, StoreError> {
    let corrupt = |msg: &str| StoreError::Corrupt(msg.to_string());
    let nl = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("no header line"))?;
    let header = std::str::from_utf8(&data[..nl]).map_err(|_| corrupt("header not utf-8"))?;
    let mut parts = header.split_ascii_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(corrupt("bad magic"));
    }
    if parts.next() != Some("v1") {
        return Err(corrupt("unknown version"));
    }
    let len: usize = parts
        .next()
        .and_then(|p| p.strip_prefix("len="))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt("bad length field"))?;
    let fnv: u64 = parts
        .next()
        .and_then(|p| p.strip_prefix("fnv="))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| corrupt("bad checksum field"))?;
    let payload = &data[nl + 1..];
    if payload.len() != len {
        return Err(StoreError::Corrupt(format!(
            "length mismatch: header says {len}, file holds {}",
            payload.len()
        )));
    }
    let actual = Fnv64::new().bytes(payload).finish();
    if actual != fnv {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch: header {fnv:016x}, payload {actual:016x}"
        )));
    }
    Ok(payload.to_vec())
}

/// Atomically publish `payload` (framed with a checksummed header) at
/// `path`: parent dirs created, bytes written to a process-unique temp
/// name in the same directory, then renamed over the target.
pub fn write(path: &Path, payload: &[u8]) -> Result<(), StoreError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
        }
    }
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "store".to_string());
    let tmp = path.with_file_name(format!(".tmp-{}-{file_name}", std::process::id()));
    std::fs::write(&tmp, encode(payload)).map_err(StoreError::Io)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        StoreError::Io(e)
    })
}

/// Read and verify the file at `path`.
pub fn read(path: &Path) -> Result<Vec<u8>, StoreError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreError::Missing),
        Err(e) => return Err(StoreError::Io(e)),
    };
    decode(&data)
}

/// Move a damaged file aside to `<name>.corrupt` (overwriting any previous
/// quarantine of the same name) and return the quarantine path.
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    let file_name = path.file_name()?.to_string_lossy().into_owned();
    let dst = path.with_file_name(format!("{file_name}.corrupt"));
    std::fs::rename(path, &dst).ok()?;
    Some(dst)
}

/// What [`read_or_quarantine`] found.
#[derive(Debug)]
pub enum Recovered {
    /// Verified payload.
    Ok(Vec<u8>),
    /// No file — a fresh start.
    Missing,
    /// The file was corrupt; it has been moved to the returned quarantine
    /// path (or deleted if the rename failed) and the caller should
    /// rebuild. The string is the corruption diagnosis.
    Quarantined(Option<PathBuf>, String),
}

/// [`read`], but a corrupt file is quarantined instead of left in place,
/// so the next writer starts clean and the evidence survives.
pub fn read_or_quarantine(path: &Path) -> Recovered {
    match read(path) {
        Ok(payload) => Recovered::Ok(payload),
        Err(StoreError::Missing) => Recovered::Missing,
        Err(StoreError::Io(_)) => Recovered::Missing,
        Err(StoreError::Corrupt(msg)) => {
            let dst = quarantine(path);
            if dst.is_none() {
                // Rename failed (cross-device, permissions): delete so the
                // corrupt bytes can't be re-read forever.
                let _ = std::fs::remove_file(path);
            }
            Recovered::Quarantined(dst, msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("maxwarp-atomic-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trip_text_and_binary() {
        let dir = tmp("rt");
        for payload in [b"hello json {}".to_vec(), vec![0u8, 255, 7, 0, 13, 10, 1]] {
            let p = dir.join("f");
            write(&p, &payload).unwrap();
            assert_eq!(read(&p).unwrap(), payload);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_is_not_corrupt() {
        let dir = tmp("missing");
        assert!(matches!(read(&dir.join("nope")), Err(StoreError::Missing)));
        assert!(matches!(
            read_or_quarantine(&dir.join("nope")),
            Recovered::Missing
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_bitflip_and_garbage_are_detected() {
        let dir = tmp("corrupt");
        let p = dir.join("f");
        let payload = b"the quick brown fox jumps over the lazy dog".to_vec();
        write(&p, &payload).unwrap();
        let good = std::fs::read(&p).unwrap();

        // Truncation at every prefix length fails (except we never confuse
        // it with success).
        for cut in [0, 5, good.len() / 2, good.len() - 1] {
            std::fs::write(&p, &good[..cut]).unwrap();
            assert!(read(&p).is_err(), "truncated to {cut} bytes");
        }
        // A single bit flip anywhere fails.
        for pos in [0, 10, good.len() - 3] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&p, &bad).unwrap();
            assert!(matches!(read(&p), Err(StoreError::Corrupt(_))), "bit {pos}");
        }
        // A plain legacy file without a header is corrupt, not a panic.
        std::fs::write(&p, b"{\"version\":1}").unwrap();
        assert!(matches!(read(&p), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_evidence_aside() {
        let dir = tmp("quarantine");
        let p = dir.join("state.json");
        write(&p, b"payload").unwrap();
        // Flip a payload bit.
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&p, &bytes).unwrap();

        let Recovered::Quarantined(Some(q), msg) = read_or_quarantine(&p) else {
            panic!("expected quarantine");
        };
        assert!(msg.contains("checksum"), "{msg}");
        assert!(!p.exists(), "corrupt file moved aside");
        assert!(q.exists() && q.ends_with("state.json.corrupt"));
        // A rebuild then publishes cleanly over the vacated path.
        write(&p, b"rebuilt").unwrap();
        assert_eq!(read(&p).unwrap(), b"rebuilt");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_is_atomic_under_concurrent_readers() {
        let dir = tmp("atomic");
        let p = dir.join("f");
        write(&p, &vec![b'a'; 4096]).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let mut reads = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match read(&p) {
                        Ok(payload) => {
                            assert!(payload.iter().all(|&b| b == payload[0]));
                            reads += 1;
                        }
                        Err(e) => panic!("reader saw a torn write: {e}"),
                    }
                }
                reads
            });
            for i in 0..50u8 {
                let byte = if i % 2 == 0 { b'a' } else { b'b' };
                write(&p, &vec![byte; 4096]).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert!(reader.join().unwrap() > 0);
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
