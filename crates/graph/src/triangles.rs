//! Triangle counting support: forward-edge orientation and the sequential
//! reference count.
//!
//! A triangle `{u, v, w}` is counted exactly once by orienting every
//! undirected edge from the "smaller" endpoint to the "larger" one under a
//! total order and intersecting forward neighbor lists. Ordering by degree
//! (ties by id) is the classic optimization for power-law graphs: hubs end
//! up with *short* forward lists.

use crate::csr::Csr;

/// How to orient edges when building the forward graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Orient by vertex id (`u -> v` iff `u < v`).
    ById,
    /// Orient by `(degree, id)` — the power-law-friendly choice.
    ByDegree,
}

/// Build the forward-oriented graph of a *symmetric* input: each
/// undirected edge appears once, pointing from lower to higher rank, and
/// every neighbor list is sorted ascending (a requirement of the
/// intersection kernels).
pub fn forward_graph(g: &Csr, orientation: Orientation) -> Csr {
    let n = g.num_vertices();
    let rank: Vec<u64> = match orientation {
        Orientation::ById => (0..n as u64).collect(),
        Orientation::ByDegree => (0..n)
            .map(|v| ((g.degree(v) as u64) << 32) | v as u64)
            .collect(),
    };
    let edges: Vec<(u32, u32)> = g
        .edges()
        .filter(|&(u, v)| rank[u as usize] < rank[v as usize])
        .collect();
    let mut fwd = Csr::from_edges(n, &edges);
    fwd.sort_neighbors();
    fwd
}

/// Sequential triangle count over a forward-oriented graph (sorted
/// neighbor lists): sum over forward edges `(u, v)` of
/// `|N+(u) ∩ N+(v)|` via two-pointer merge.
pub fn count_triangles_forward(fwd: &Csr) -> u64 {
    let mut total = 0u64;
    for u in 0..fwd.num_vertices() {
        let nu = fwd.neighbors(u);
        for &v in nu {
            let nv = fwd.neighbors(v);
            total += sorted_intersection_size(nu, nv);
        }
    }
    total
}

/// Triangle count of a symmetric graph.
pub fn count_triangles(g: &Csr) -> u64 {
    count_triangles_forward(&forward_graph(g, Orientation::ByDegree))
}

/// `|a ∩ b|` for sorted slices.
pub fn sorted_intersection_size(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, grid2d, small_world};

    fn complete_graph(n: u32) -> Csr {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(count_triangles(&grid2d(10, 10)), 0);
        // A 4-cycle has no triangles.
        let c4 = Csr::from_edges(
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (3, 0),
                (0, 3),
            ],
        );
        assert_eq!(count_triangles(&c4), 0);
    }

    #[test]
    fn complete_graph_count() {
        // K_n has C(n,3) triangles.
        for n in [3u32, 4, 5, 8] {
            let want = (n as u64) * (n as u64 - 1) * (n as u64 - 2) / 6;
            assert_eq!(count_triangles(&complete_graph(n)), want, "K_{n}");
        }
    }

    #[test]
    fn single_triangle_plus_tail() {
        let g = Csr::from_edges(
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 0),
                (0, 2),
                (2, 3),
                (3, 2),
            ],
        );
        assert_eq!(count_triangles(&g), 1);
    }

    #[test]
    fn orientations_agree() {
        let g = erdos_renyi(300, 4000, 9).symmetrize();
        let by_id = count_triangles_forward(&forward_graph(&g, Orientation::ById));
        let by_deg = count_triangles_forward(&forward_graph(&g, Orientation::ByDegree));
        assert_eq!(by_id, by_deg);
        assert!(by_id > 0, "dense ER graph should close some triangles");
    }

    #[test]
    fn forward_graph_halves_edges_and_sorts() {
        let g = small_world(500, 4, 0.1, 3);
        let fwd = forward_graph(&g, Orientation::ByDegree);
        assert_eq!(fwd.num_edges() * 2, g.num_edges());
        for v in 0..500 {
            let nb = fwd.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        }
    }

    #[test]
    fn degree_orientation_bounds_forward_degree() {
        // A star: the hub's forward list must be empty or tiny under
        // degree orientation (every leaf has lower degree than the hub).
        let mut edges = Vec::new();
        for v in 1..50u32 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        let g = Csr::from_edges(50, &edges);
        let fwd = forward_graph(&g, Orientation::ByDegree);
        assert_eq!(fwd.degree(0), 0, "hub has highest rank: no forward edges");
    }

    #[test]
    fn intersection_helper() {
        assert_eq!(sorted_intersection_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_size(&[], &[1]), 0);
        assert_eq!(sorted_intersection_size(&[1, 2], &[3, 4]), 0);
    }
}
