//! Compressed sparse row (CSR) graph representation.
//!
//! The layout the paper's kernels consume directly: a `row_offsets` array of
//! `n + 1` entries and a `col_indices` array of `m` entries, both `u32` —
//! exactly what gets uploaded to simulated device memory.

use serde::{Deserialize, Serialize};

/// Vertex identifier.
pub type VertexId = u32;

/// A directed graph in CSR form. For undirected graphs, each edge appears
/// in both directions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    /// `n + 1` monotone offsets into `col_indices`.
    row_offsets: Vec<u32>,
    /// Neighbor lists, concatenated.
    col_indices: Vec<VertexId>,
}

impl Csr {
    /// Build from raw arrays, validating all CSR invariants.
    ///
    /// # Panics
    /// If offsets are empty, non-monotone, don't end at
    /// `col_indices.len()`, or any column index is out of range.
    pub fn from_raw(row_offsets: Vec<u32>, col_indices: Vec<VertexId>) -> Self {
        assert!(!row_offsets.is_empty(), "row_offsets must have n+1 entries");
        assert_eq!(row_offsets[0], 0, "row_offsets must start at 0");
        assert!(
            row_offsets.windows(2).all(|w| w[0] <= w[1]),
            "row_offsets must be monotone"
        );
        assert_eq!(
            row_offsets[row_offsets.len() - 1] as usize,
            col_indices.len(),
            "last offset must equal edge count"
        );
        let n = (row_offsets.len() - 1) as u32;
        assert!(
            col_indices.iter().all(|&c| c < n),
            "column index out of range"
        );
        Csr {
            row_offsets,
            col_indices,
        }
    }

    /// Build from an edge list. Self-loops are kept; parallel edges are kept.
    /// `n` is the vertex count (edges must stay below it).
    pub fn from_edges(n: u32, edges: &[(VertexId, VertexId)]) -> Self {
        let mut deg = vec![0u32; n as usize];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            deg[u as usize] += 1;
        }
        let mut row_offsets = Vec::with_capacity(n as usize + 1);
        let mut acc = 0u32;
        row_offsets.push(0);
        for d in &deg {
            acc = match acc.checked_add(*d) {
                Some(next) => next,
                None => panic!("edge count overflows u32 CSR offsets"),
            };
            row_offsets.push(acc);
        }
        let mut col_indices = vec![0u32; edges.len()];
        let mut cursor: Vec<u32> = row_offsets[..n as usize].to_vec();
        for &(u, v) in edges {
            let c = &mut cursor[u as usize];
            col_indices[*c as usize] = v;
            *c += 1;
        }
        Csr {
            row_offsets,
            col_indices,
        }
    }

    /// An edgeless graph with `n` vertices.
    pub fn empty(n: u32) -> Self {
        Csr {
            row_offsets: vec![0; n as usize + 1],
            col_indices: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.row_offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.col_indices.len() as u64
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let s = self.row_offsets[v as usize] as usize;
        let e = self.row_offsets[v as usize + 1] as usize;
        &self.col_indices[s..e]
    }

    /// The raw offsets array (`n + 1` entries) — uploaded to the device.
    #[inline]
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// The raw adjacency array (`m` entries) — uploaded to the device.
    #[inline]
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col_indices
    }

    /// Iterate all directed edges as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// The transpose (all edges reversed).
    pub fn reverse(&self) -> Csr {
        let edges: Vec<(u32, u32)> = self.edges().map(|(u, v)| (v, u)).collect();
        Csr::from_edges(self.num_vertices(), &edges)
    }

    /// Symmetrized copy: for every edge `(u,v)` both directions exist, with
    /// duplicates removed. Self-loops are dropped.
    pub fn symmetrize(&self) -> Csr {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.col_indices.len() * 2);
        for (u, v) in self.edges() {
            if u != v {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Csr::from_edges(self.num_vertices(), &edges)
    }

    /// True if for every edge `(u,v)` the reverse edge exists.
    pub fn is_symmetric(&self) -> bool {
        let mut set: Vec<(u32, u32)> = self.edges().collect();
        set.sort_unstable();
        self.edges()
            .all(|(u, v)| set.binary_search(&(v, u)).is_ok())
    }

    /// Sort each neighbor list ascending (canonical form; also improves
    /// locality for the CPU baselines).
    pub fn sort_neighbors(&mut self) {
        for v in 0..self.num_vertices() {
            let s = self.row_offsets[v as usize] as usize;
            let e = self.row_offsets[v as usize + 1] as usize;
            self.col_indices[s..e].sort_unstable();
        }
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.num_vertices() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_basics() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
    }

    #[test]
    fn from_raw_validates() {
        let g = Csr::from_raw(vec![0, 2, 3], vec![1, 0, 0]);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.neighbors(0), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_raw_rejects_nonmonotone() {
        let _ = Csr::from_raw(vec![0, 3, 2], vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_raw_rejects_bad_column() {
        let _ = Csr::from_raw(vec![0, 1], vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_bad_vertex() {
        let _ = Csr::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let g2 = Csr::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn reverse_transposes() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.neighbors(3), &[1, 2]);
        assert_eq!(r.degree(0), 0);
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let g = diamond();
        assert!(!g.is_symmetric());
        let s = g.symmetrize();
        assert!(s.is_symmetric());
        assert_eq!(s.num_edges(), 8);
        // No self-loops, no duplicates.
        let mut g2 = Csr::from_edges(3, &[(0, 0), (0, 1), (0, 1), (1, 0)]);
        g2.sort_neighbors();
        let s2 = g2.symmetrize();
        assert_eq!(s2.num_edges(), 2);
        assert_eq!(s2.neighbors(0), &[1]);
    }

    #[test]
    fn sort_neighbors_canonicalizes() {
        let mut g = Csr::from_edges(3, &[(0, 2), (0, 1)]);
        assert_eq!(g.neighbors(0), &[2, 1]);
        g.sort_neighbors();
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn degree_stats() {
        let g = diamond();
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 1.0).abs() < 1e-12);
    }
}
