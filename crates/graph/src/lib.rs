//! # maxwarp-graph — graph substrate for the maxwarp workspace
//!
//! CSR graphs, deterministic synthetic generators matched to the degree
//! -distribution classes of the paper's datasets, dataset stand-ins with a
//! scale knob, text/binary IO, degree statistics, and sequential reference
//! algorithms that validate every GPU kernel.
//!
//! ```
//! use maxwarp_graph::{Dataset, Scale, DegreeStats, reference};
//!
//! let g = Dataset::Rmat.build(Scale::Tiny);
//! let stats = DegreeStats::of(&g);
//! assert!(stats.cv > 0.7); // heavy tail
//! let levels = reference::bfs_levels(&g, Dataset::Rmat.source(&g));
//! assert_eq!(levels[Dataset::Rmat.source(&g) as usize], 0);
//! ```

pub mod atomic;
pub mod builder;
pub mod cache;
pub mod csr;
pub mod datasets;
pub mod degree;
pub mod digest;
pub mod generators;
pub mod io;
pub mod permute;
pub mod reference;
pub mod sample;
pub mod triangles;

pub use builder::{largest_component, GraphBuilder};
pub use cache::{cached_or_build, cached_or_build_in, partitioned_key};
pub use csr::{Csr, VertexId};
pub use datasets::{Dataset, Scale};
pub use degree::{degree_histogram_log2, DegreeStats};
pub use digest::{csr_digest, Fnv64};
pub use generators::{
    citation_graph, erdos_renyi, grid2d, hub_graph, random_weights, regular_graph, rmat,
    small_world, RmatConfig,
};
pub use io::{
    decode_csr, encode_csr, load_csr, read_edge_list, save_csr, write_edge_list, GraphIoError,
};
pub use sample::induced_sample;

pub use permute::{
    apply_permutation, bfs_permutation, degree_sort_permutation, inverse_permutation,
    is_permutation, random_permutation,
};
pub use triangles::{
    count_triangles, count_triangles_forward, forward_graph, sorted_intersection_size, Orientation,
};
