//! Vertex relabeling (permutations).
//!
//! Vertex ordering controls memory locality: the baseline kernel's frontier
//! scan is only coalesced because consecutive thread ids map to consecutive
//! vertices, and adjacency lists of nearby vertices sit nearby in CSR.
//! Relabeling lets the harness isolate how much of each method's
//! performance comes from lucky ordering (ablation A1 in DESIGN.md).

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Relabel vertices: `perm[old] = new`. Edges `(u,v)` become
/// `(perm[u], perm[v])`; neighbor lists are re-sorted into the new id
/// order so the result is canonical.
pub fn apply_permutation(g: &Csr, perm: &[u32]) -> Csr {
    let n = g.num_vertices();
    assert_eq!(perm.len() as u32, n, "permutation length must equal n");
    debug_assert!(is_permutation(perm));
    let edges: Vec<(u32, u32)> = g
        .edges()
        .map(|(u, v)| (perm[u as usize], perm[v as usize]))
        .collect();
    let mut out = Csr::from_edges(n, &edges);
    out.sort_neighbors();
    out
}

/// True if `perm` is a bijection on `0..len`.
pub fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p as usize >= perm.len() || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

/// Inverse permutation: `inv[perm[i]] = i`.
pub fn inverse_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p as usize] = i as u32;
    }
    inv
}

/// A uniformly random permutation (destroys locality).
pub fn random_permutation(n: u32, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    perm
}

/// BFS-order relabeling from `src`: vertices get ids in discovery order
/// (unreached vertices keep their relative order after all reached ones).
/// This is the locality-restoring ordering (Cuthill–McKee flavoured).
pub fn bfs_permutation(g: &Csr, src: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut perm = vec![u32::MAX; n as usize];
    let mut next_id = 0u32;
    let mut queue = std::collections::VecDeque::new();
    perm[src as usize] = next_id;
    next_id += 1;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if perm[v as usize] == u32::MAX {
                perm[v as usize] = next_id;
                next_id += 1;
                queue.push_back(v);
            }
        }
    }
    for p in perm.iter_mut() {
        if *p == u32::MAX {
            *p = next_id;
            next_id += 1;
        }
    }
    perm
}

/// Degree-descending relabeling: hubs get the smallest ids (clusters the
/// heavy tail at the front — adversarial for static partitioning).
pub fn degree_sort_permutation(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    inverse_permutation(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::reference::bfs_levels;

    #[test]
    fn identity_permutation_is_noop() {
        let mut g = erdos_renyi(100, 600, 1);
        g.sort_neighbors();
        let id: Vec<u32> = (0..100).collect();
        assert_eq!(apply_permutation(&g, &id), g);
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = erdos_renyi(200, 1000, 2);
        let perm = random_permutation(200, 7);
        let pg = apply_permutation(&g, &perm);
        assert_eq!(pg.num_edges(), g.num_edges());
        // Degree multiset preserved.
        let mut d1: Vec<u32> = (0..200).map(|v| g.degree(v)).collect();
        let mut d2: Vec<u32> = (0..200).map(|v| pg.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        // BFS levels commute with relabeling.
        let lv = bfs_levels(&g, 0);
        let plv = bfs_levels(&pg, perm[0]);
        for v in 0..200usize {
            assert_eq!(lv[v], plv[perm[v] as usize], "vertex {v}");
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let perm = random_permutation(64, 3);
        let inv = inverse_permutation(&perm);
        assert!(is_permutation(&inv));
        let g = erdos_renyi(64, 256, 4);
        let mut gg = g.clone();
        gg.sort_neighbors();
        let back = apply_permutation(&apply_permutation(&g, &perm), &inv);
        assert_eq!(back, gg);
    }

    #[test]
    fn is_permutation_detects_bad_input() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }

    #[test]
    fn bfs_permutation_orders_by_discovery() {
        // Path 0-1-2-3 with ids scrambled: BFS order from 2.
        let g = Csr::from_edges(4, &[(2, 1), (1, 2), (1, 0), (0, 1), (2, 3), (3, 2)]);
        let perm = bfs_permutation(&g, 2);
        assert_eq!(perm[2], 0); // source first
        assert!(is_permutation(&perm));
        // Neighbors of the source get the next ids.
        assert!(perm[1] <= 2 && perm[3] <= 2);
    }

    #[test]
    fn bfs_permutation_handles_unreachable() {
        let g = Csr::from_edges(5, &[(0, 1)]);
        let perm = bfs_permutation(&g, 0);
        assert!(is_permutation(&perm));
        assert_eq!(perm[0], 0);
        assert_eq!(perm[1], 1);
    }

    #[test]
    fn degree_sort_puts_hubs_first() {
        let edges: Vec<(u32, u32)> = (1..20u32).map(|v| (7, v % 20)).collect();
        let g = Csr::from_edges(20, &edges);
        let perm = degree_sort_permutation(&g);
        assert_eq!(perm[7], 0, "highest-degree vertex gets id 0");
        assert!(is_permutation(&perm));
    }
}
