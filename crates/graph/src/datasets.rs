//! Dataset stand-ins for the paper's evaluation table (T1).
//!
//! The paper evaluated real SNAP graphs plus synthetic RMAT/random
//! instances. We cannot ship the real graphs, so each dataset here is a
//! seeded synthetic generator configured to match the *degree-distribution
//! class* of its template (see DESIGN.md's substitution record). Everything
//! the experiments claim depends on that class: heavy-tailed graphs expose
//! intra-warp imbalance, low-degree regular graphs expose SIMD-lane waste.

use crate::csr::Csr;
use crate::generators::{
    citation_graph, erdos_renyi, grid2d, hub_graph, regular_graph, rmat, small_world, RmatConfig,
};

/// How big to build a dataset. `Tiny` is for unit tests, `Small` for
/// integration tests, `Medium` for the figure-regeneration harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~1-4k vertices — unit tests.
    Tiny,
    /// ~8-32k vertices — integration tests, quick figures.
    Small,
    /// ~64-260k vertices, ~1M edges — the harness default.
    Medium,
}

/// The eight datasets of the reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Classic-skew RMAT (a=0.45): the paper's "RMAT" instances.
    Rmat,
    /// Erdős–Rényi uniform: the paper's "Random" instances.
    Random,
    /// Graph500-skew RMAT, symmetrized, average degree ~14 — LiveJournal's
    /// class (social network, strong power law).
    LiveJournalLike,
    /// Citation DAG with preferential attachment — cit-Patents' class
    /// (bounded out-degree, mild in-degree tail).
    PatentsLike,
    /// Extreme-hub graph — WikiTalk's class (a handful of vertices own a
    /// large share of all edges).
    WikiTalkLike,
    /// 2-D mesh — road networks' class (degree ≤ 4, huge diameter).
    RoadNet,
    /// Watts–Strogatz — low variance, short diameter.
    SmallWorld,
    /// Exactly 8-regular random — zero degree variance control.
    Regular,
}

impl Dataset {
    /// All datasets in the order they appear in the tables.
    pub const ALL: [Dataset; 8] = [
        Dataset::Rmat,
        Dataset::Random,
        Dataset::LiveJournalLike,
        Dataset::PatentsLike,
        Dataset::WikiTalkLike,
        Dataset::RoadNet,
        Dataset::SmallWorld,
        Dataset::Regular,
    ];

    /// Short table name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Rmat => "RMAT",
            Dataset::Random => "Random",
            Dataset::LiveJournalLike => "LiveJournal*",
            Dataset::PatentsLike => "Patents*",
            Dataset::WikiTalkLike => "WikiTalk*",
            Dataset::RoadNet => "RoadNet*",
            Dataset::SmallWorld => "SmallWorld",
            Dataset::Regular => "Regular",
        }
    }

    /// What the stand-in models (for the dataset table).
    pub fn description(&self) -> &'static str {
        match self {
            Dataset::Rmat => "RMAT a=.45,b=c=.15 — scale-free synthetic",
            Dataset::Random => "Erdos-Renyi uniform random",
            Dataset::LiveJournalLike => "social-network class (graph500 RMAT, symmetrized)",
            Dataset::PatentsLike => "citation DAG, preferential attachment",
            Dataset::WikiTalkLike => "extreme-hub class (few huge-degree vertices)",
            Dataset::RoadNet => "2-D mesh, degree<=4, huge diameter",
            Dataset::SmallWorld => "Watts-Strogatz ring, p=0.05",
            Dataset::Regular => "exactly 8-out-regular random",
        }
    }

    /// True for the graphs whose degree distribution has a heavy tail —
    /// the group the paper's method is expected to win big on.
    pub fn heavy_tailed(&self) -> bool {
        matches!(
            self,
            Dataset::Rmat | Dataset::LiveJournalLike | Dataset::WikiTalkLike
        )
    }

    /// Build the dataset at the given scale (deterministic).
    pub fn build(&self, scale: Scale) -> Csr {
        // Per-dataset seeds keep instances independent but reproducible.
        let seed = 0xC0FFEE ^ (*self as u64);
        match self {
            Dataset::Rmat => {
                let s = match scale {
                    Scale::Tiny => 11,
                    Scale::Small => 14,
                    Scale::Medium => 17,
                };
                rmat(&RmatConfig::classic(s, 8, seed))
            }
            Dataset::Random => {
                let (n, m) = match scale {
                    Scale::Tiny => (2_048, 16_384),
                    Scale::Small => (16_384, 131_072),
                    Scale::Medium => (131_072, 1_048_576),
                };
                erdos_renyi(n, m, seed)
            }
            Dataset::LiveJournalLike => {
                let s = match scale {
                    Scale::Tiny => 10,
                    Scale::Small => 13,
                    Scale::Medium => 16,
                };
                rmat(&RmatConfig::graph500(s, 7, seed)).symmetrize()
            }
            Dataset::PatentsLike => {
                let n = match scale {
                    Scale::Tiny => 3_000,
                    Scale::Small => 25_000,
                    Scale::Medium => 200_000,
                };
                citation_graph(n, 5, 0.4, seed)
            }
            Dataset::WikiTalkLike => {
                let (n, hubs, hub_deg) = match scale {
                    Scale::Tiny => (2_000, 4, 400),
                    Scale::Small => (16_000, 16, 1_600),
                    Scale::Medium => (100_000, 100, 5_000),
                };
                hub_graph(n, hubs, hub_deg, 2, seed)
            }
            Dataset::RoadNet => {
                let side = match scale {
                    Scale::Tiny => 45,
                    Scale::Small => 128,
                    Scale::Medium => 512,
                };
                grid2d(side, side)
            }
            Dataset::SmallWorld => {
                let n = match scale {
                    Scale::Tiny => 2_048,
                    Scale::Small => 16_384,
                    Scale::Medium => 131_072,
                };
                small_world(n, 4, 0.05, seed)
            }
            Dataset::Regular => {
                let n = match scale {
                    Scale::Tiny => 2_048,
                    Scale::Small => 16_384,
                    Scale::Medium => 131_072,
                };
                regular_graph(n, 8, seed)
            }
        }
    }

    /// Cache key for [`build`](Dataset::build): spells out the generator,
    /// its parameters, the seed, and the scale — everything the output is a
    /// function of. The trailing version tag must be bumped whenever any
    /// generator's algorithm changes, or stale cached graphs would survive.
    pub fn cache_key(&self, scale: Scale) -> String {
        let seed = 0xC0FFEE ^ (*self as u64);
        format!("{:?}-{:?}-seed{seed:x}-v1", self, scale)
    }

    /// [`build`](Dataset::build) through the on-disk graph cache (see
    /// [`crate::cache`]): the first build at a given scale writes the CSR to
    /// disk, every later build — in this process or any other — loads it.
    pub fn build_cached(&self, scale: Scale) -> Csr {
        crate::cache::cached_or_build(&self.cache_key(scale), || self.build(scale))
    }

    /// A good BFS/SSSP source for this dataset: a vertex of near-maximal
    /// degree (the paper picks sources inside the giant component; a
    /// max-degree vertex always is).
    pub fn source(&self, g: &Csr) -> u32 {
        (0..g.num_vertices())
            .max_by_key(|&v| g.degree(v))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn all_tiny_datasets_build() {
        for d in Dataset::ALL {
            let g = d.build(Scale::Tiny);
            assert!(g.num_vertices() > 0, "{}", d.name());
            assert!(g.num_edges() > 0, "{}", d.name());
        }
    }

    #[test]
    fn deterministic_builds() {
        for d in [Dataset::Rmat, Dataset::WikiTalkLike] {
            assert_eq!(d.build(Scale::Tiny), d.build(Scale::Tiny));
        }
    }

    #[test]
    fn heavy_tailed_classification_matches_stats() {
        for d in Dataset::ALL {
            let g = d.build(Scale::Tiny);
            let s = DegreeStats::of(&g);
            // The tail is damped at Tiny scale, but the two groups must
            // still be cleanly separable.
            if d.heavy_tailed() {
                assert!(s.cv > 0.7, "{} cv={}", d.name(), s.cv);
            } else {
                assert!(s.cv < 0.5, "{} cv={}", d.name(), s.cv);
            }
        }
    }

    #[test]
    fn source_is_high_degree() {
        let g = Dataset::Rmat.build(Scale::Tiny);
        let src = Dataset::Rmat.source(&g);
        assert_eq!(g.degree(src), g.max_degree());
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Dataset::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
