//! Synthetic graph generators.
//!
//! Each generator is deterministic given its seed and reproduces a degree
//! -distribution *class* from the paper's evaluation: scale-free/heavy-tail
//! (RMAT), uniform random (Erdős–Rényi), citation-like bounded DAGs,
//! extreme-hub graphs, low-degree meshes (road networks), small-world
//! rings, and exactly-regular graphs.

pub mod citation;
pub mod erdos_renyi;
pub mod grid;
pub mod hub;
pub mod regular;
pub mod rmat;
pub mod small_world;

pub use citation::citation_graph;
pub use erdos_renyi::erdos_renyi;
pub use grid::grid2d;
pub use hub::hub_graph;
pub use regular::regular_graph;
pub use rmat::{rmat, RmatConfig};
pub use small_world::small_world;

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random edge weights in `[1, max_weight]`, one per directed edge
/// of `g`, aligned with `g.col_indices()`.
pub fn random_weights(g: &Csr, max_weight: u32, seed: u64) -> Vec<u32> {
    assert!(max_weight >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77e1_u64);
    (0..g.num_edges())
        .map(|_| rng.gen_range(1..=max_weight))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_in_range_and_deterministic() {
        let g = erdos_renyi(100, 400, 7);
        let w1 = random_weights(&g, 16, 3);
        let w2 = random_weights(&g, 16, 3);
        assert_eq!(w1, w2);
        assert_eq!(w1.len() as u64, g.num_edges());
        assert!(w1.iter().all(|&x| (1..=16).contains(&x)));
        let w3 = random_weights(&g, 16, 4);
        assert_ne!(w1, w3);
    }
}
