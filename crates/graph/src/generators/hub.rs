//! Extreme-hub graphs — the WikiTalk-shaped stand-in: a tiny set of vertices
//! with enormous degree embedded in a low-degree background. This is the
//! worst case for thread-per-vertex kernels (one thread serially walks a
//! million-edge adjacency list while its warp idles) and the best case for
//! the paper's *defer outliers* technique.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a hub graph: `num_hubs` vertices receive `hub_degree` out-edges to
/// uniform random targets; every other vertex gets `base_degree` out-edges.
/// The graph is left directed (like the talk/citation graphs it mimics).
pub fn hub_graph(n: u32, num_hubs: u32, hub_degree: u32, base_degree: u32, seed: u64) -> Csr {
    assert!(num_hubs <= n, "more hubs than vertices");
    assert!(hub_degree < n, "hub degree must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(
        (num_hubs as usize) * (hub_degree as usize)
            + ((n - num_hubs) as usize) * (base_degree as usize),
    );
    // Hubs are spread across the id space (not clustered at 0) so that a
    // warp of consecutive vertex ids usually contains at most one hub —
    // the worst case for intra-warp imbalance.
    let stride = (n / num_hubs.max(1)).max(1);
    let mut is_hub = vec![false; n as usize];
    for h in 0..num_hubs {
        is_hub[(h * stride) as usize % n as usize] = true;
    }
    for u in 0..n {
        let d = if is_hub[u as usize] {
            hub_degree
        } else {
            base_degree
        };
        for _ in 0..d {
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            edges.push((u, v));
        }
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn hub_degrees_dominant() {
        let g = hub_graph(1000, 5, 500, 4, 3);
        let s = DegreeStats::of(&g);
        assert_eq!(s.max, 500);
        assert!(s.cv > 3.0, "cv={}", s.cv);
        // Top 1% of vertices (10) includes the 5 hubs: most edges.
        assert!(s.top1pct_edge_share > 0.3, "{}", s.top1pct_edge_share);
    }

    #[test]
    fn non_hubs_have_base_degree() {
        let g = hub_graph(100, 2, 50, 3, 1);
        let heavy = (0..100).filter(|&v| g.degree(v) == 50).count();
        let light = (0..100).filter(|&v| g.degree(v) == 3).count();
        assert_eq!(heavy, 2);
        assert_eq!(light, 98);
    }

    #[test]
    fn deterministic() {
        assert_eq!(hub_graph(64, 2, 16, 2, 5), hub_graph(64, 2, 16, 2, 5));
        assert_ne!(hub_graph(64, 2, 16, 2, 5), hub_graph(64, 2, 16, 2, 6));
    }

    #[test]
    fn hubs_spread_out() {
        let g = hub_graph(1024, 4, 100, 2, 9);
        let hubs: Vec<u32> = (0..1024).filter(|&v| g.degree(v) == 100).collect();
        assert_eq!(hubs.len(), 4);
        // No two hubs within the same 32-vertex warp span.
        for w in hubs.windows(2) {
            assert!(w[1] / 32 != w[0] / 32);
        }
    }
}
