//! R-MAT (recursive matrix) generator — the standard scale-free synthetic
//! graph family used throughout the GPU-graph literature, including the
//! paper's RMAT datasets. Skewed partition probabilities produce a
//! power-law-like degree distribution with pronounced hubs.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct RmatConfig {
    /// `n = 2^scale` vertices.
    pub scale: u32,
    /// `m = edge_factor * n` generated edges (before optional dedup).
    pub edge_factor: u32,
    /// Quadrant probabilities; must sum to ~1. Graph500 uses
    /// (0.57, 0.19, 0.19, 0.05); the classic skewed setting is
    /// (0.45, 0.15, 0.15, 0.25).
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Remove duplicate edges and self-loops.
    pub dedup: bool,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// The skew used by the paper era's RMAT experiments.
    pub fn classic(scale: u32, edge_factor: u32, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.45,
            b: 0.15,
            c: 0.15,
            dedup: true,
            seed,
        }
    }

    /// Graph500 parameters: stronger skew, bigger hubs.
    pub fn graph500(scale: u32, edge_factor: u32, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            dedup: true,
            seed,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate an R-MAT graph.
pub fn rmat(cfg: &RmatConfig) -> Csr {
    assert!(cfg.scale <= 28, "scale {} too large for u32 ids", cfg.scale);
    assert!(cfg.d() > -1e-9, "quadrant probabilities exceed 1");
    let n = 1u32 << cfg.scale;
    let m = (n as u64 * cfg.edge_factor as u64) as usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..cfg.scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < cfg.a {
                // upper-left: no bits set
            } else if r < cfg.a + cfg.b {
                v |= 1;
            } else if r < cfg.a + cfg.b + cfg.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    if cfg.dedup {
        edges.retain(|&(u, v)| u != v);
        edges.sort_unstable();
        edges.dedup();
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn sizes_and_determinism() {
        let cfg = RmatConfig::classic(10, 8, 42);
        let g1 = rmat(&cfg);
        let g2 = rmat(&cfg);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_vertices(), 1024);
        // Dedup removes some of the 8192 generated edges.
        assert!(g1.num_edges() > 4000 && g1.num_edges() <= 8192);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat(&RmatConfig::classic(8, 8, 1));
        let g2 = rmat(&RmatConfig::classic(8, 8, 2));
        assert_ne!(g1, g2);
    }

    #[test]
    fn skewed_distribution_has_hubs() {
        let g = rmat(&RmatConfig::graph500(12, 16, 7));
        let s = DegreeStats::of(&g);
        // Scale-free shape: max degree far above mean, high CV.
        assert!(
            s.max as f64 > 10.0 * s.mean,
            "max={} mean={}",
            s.max,
            s.mean
        );
        assert!(s.cv > 1.0, "cv={}", s.cv);
    }

    #[test]
    fn no_dedup_keeps_count_exact() {
        let mut cfg = RmatConfig::classic(8, 4, 3);
        cfg.dedup = false;
        let g = rmat(&cfg);
        assert_eq!(g.num_edges(), 256 * 4);
    }

    #[test]
    fn dedup_removes_self_loops() {
        let g = rmat(&RmatConfig::classic(8, 8, 5));
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn invalid_probabilities_panic() {
        let cfg = RmatConfig {
            scale: 4,
            edge_factor: 2,
            a: 0.6,
            b: 0.3,
            c: 0.3,
            dedup: false,
            seed: 0,
        };
        let _ = rmat(&cfg);
    }
}
