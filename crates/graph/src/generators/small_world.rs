//! Watts–Strogatz small-world graphs: a ring lattice with random rewiring.
//! Low degree variance but short diameter — distinguishes "few BFS levels"
//! effects from "heavy tail" effects in the experiments.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Watts–Strogatz graph: `n` vertices on a ring, each connected to its `k`
/// nearest neighbors on each side (degree `2k` before rewiring), each edge
/// rewired with probability `p` to a uniform random target. Returned graph
/// is symmetric.
pub fn small_world(n: u32, k: u32, p: f64, seed: u64) -> Csr {
    assert!(n > 2 * k, "need n > 2k (n={n}, k={k})");
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity((n as usize) * (k as usize) * 2);
    for u in 0..n {
        for j in 1..=k {
            let mut v = (u + j) % n;
            if rng.gen::<f64>() < p {
                // Rewire to a uniform non-self target.
                v = rng.gen_range(0..n);
                while v == u {
                    v = rng.gen_range(0..n);
                }
            }
            edges.push((u, v));
            edges.push((v, u));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn unrewired_ring_is_regular() {
        let g = small_world(100, 3, 0.0, 1);
        for v in 0..100 {
            assert_eq!(g.degree(v), 6, "vertex {v}");
        }
        assert!(g.is_symmetric());
    }

    #[test]
    fn rewiring_perturbs_but_stays_low_variance() {
        let g = small_world(1000, 4, 0.1, 2);
        let s = DegreeStats::of(&g);
        assert!(s.mean > 7.0 && s.mean < 9.0, "mean={}", s.mean);
        assert!(s.cv < 0.4, "cv={}", s.cv);
        assert!(g.is_symmetric());
    }

    #[test]
    fn deterministic() {
        assert_eq!(small_world(64, 2, 0.3, 7), small_world(64, 2, 0.3, 7));
    }

    #[test]
    #[should_panic(expected = "need n > 2k")]
    fn degenerate_rejected() {
        let _ = small_world(4, 2, 0.0, 0);
    }
}
