//! Exactly-regular random graphs: every vertex has out-degree `k` with
//! uniformly random distinct targets. Zero degree variance — the extreme
//! "balanced" endpoint of the workload-imbalance spectrum.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random `k`-out-regular directed graph (no self-loops, no duplicate
/// targets per vertex).
pub fn regular_graph(n: u32, k: u32, seed: u64) -> Csr {
    assert!(k < n, "out-degree {k} must be below vertex count {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity((n as usize) * (k as usize));
    let mut chosen: Vec<u32> = Vec::with_capacity(k as usize);
    for u in 0..n {
        chosen.clear();
        while chosen.len() < k as usize {
            let v = rng.gen_range(0..n);
            if v != u && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            edges.push((u, v));
        }
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn every_vertex_has_degree_k() {
        let g = regular_graph(200, 8, 5);
        for v in 0..200 {
            assert_eq!(g.degree(v), 8);
        }
        let s = DegreeStats::of(&g);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.min, 8);
        assert_eq!(s.max, 8);
    }

    #[test]
    fn no_self_loops_or_dup_targets() {
        let g = regular_graph(50, 6, 1);
        for u in 0..50u32 {
            let mut nb = g.neighbors(u).to_vec();
            assert!(!nb.contains(&u));
            nb.sort_unstable();
            nb.dedup();
            assert_eq!(nb.len(), 6);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(regular_graph(64, 4, 9), regular_graph(64, 4, 9));
        assert_ne!(regular_graph(64, 4, 9), regular_graph(64, 4, 10));
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn k_too_large_rejected() {
        let _ = regular_graph(4, 4, 0);
    }
}
