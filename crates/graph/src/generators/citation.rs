//! Citation-style graphs — the cit-Patents stand-in: vertices arrive in
//! order and cite earlier vertices with a recency-plus-popularity bias.
//! Moderate maximum degree, mild tail: between ER and RMAT on the
//! imbalance spectrum, matching where Patents sits in the paper's results.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a citation graph: vertex `u` (for `u > 0`) cites up to
/// `citations_per_vertex` earlier vertices; with probability
/// `preferential` a citation copies the target of an existing edge
/// (preferential attachment — yields a mild power law on in-degree),
/// otherwise the target is uniform over `[0, u)`.
pub fn citation_graph(n: u32, citations_per_vertex: u32, preferential: f64, seed: u64) -> Csr {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&preferential));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> =
        Vec::with_capacity((n as usize) * citations_per_vertex as usize);
    for u in 1..n {
        let c = citations_per_vertex.min(u);
        for _ in 0..c {
            let v = if !edges.is_empty() && rng.gen::<f64>() < preferential {
                // Copy an earlier citation's target (preferential).
                let (_, t) = edges[rng.gen_range(0..edges.len())];
                if t < u {
                    t
                } else {
                    rng.gen_range(0..u)
                }
            } else {
                rng.gen_range(0..u)
            };
            edges.push((u, v));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn is_a_dag_by_construction() {
        let g = citation_graph(500, 5, 0.5, 1);
        assert!(g.edges().all(|(u, v)| v < u), "citations point backward");
    }

    #[test]
    fn out_degree_bounded() {
        let g = citation_graph(1000, 8, 0.3, 2);
        let s = DegreeStats::of(&g);
        assert!(s.max <= 8);
        // Out-degrees are tight; the tail lives on in-degrees.
        let rin = g.reverse();
        let sin = DegreeStats::of(&rin);
        assert!(
            sin.max > 3 * sin.mean as u32,
            "in-deg max={} mean={}",
            sin.max,
            sin.mean
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            citation_graph(128, 4, 0.5, 7),
            citation_graph(128, 4, 0.5, 7)
        );
        assert_ne!(
            citation_graph(128, 4, 0.5, 7),
            citation_graph(128, 4, 0.5, 8)
        );
    }

    #[test]
    fn early_vertices_cite_fewer() {
        let g = citation_graph(100, 10, 0.0, 3);
        assert_eq!(g.degree(0), 0);
        assert!(g.degree(1) <= 1);
        assert!(g.degree(50) <= 10);
    }
}
