//! 2-D grid (mesh) graphs — the stand-in for road networks: near-constant
//! low degree, huge diameter. On these graphs the baseline thread-per-vertex
//! kernel is already balanced, so virtual-warp-centric execution *wastes*
//! SIMD lanes — the crossover case in the paper's figures.

use crate::csr::Csr;

/// A `width × height` 4-neighbor mesh, symmetric (each adjacency stored in
/// both directions). Vertex `(x, y)` has id `y * width + x`.
pub fn grid2d(width: u32, height: u32) -> Csr {
    assert!(width >= 1 && height >= 1);
    let n = match width.checked_mul(height) {
        Some(n) => n,
        None => panic!("grid dimensions overflow u32"),
    };
    let mut edges = Vec::with_capacity(4 * n as usize);
    for y in 0..height {
        for x in 0..width {
            let v = y * width + x;
            if x + 1 < width {
                edges.push((v, v + 1));
                edges.push((v + 1, v));
            }
            if y + 1 < height {
                edges.push((v, v + width));
                edges.push((v + width, v));
            }
        }
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn small_grid_structure() {
        let g = grid2d(3, 2);
        assert_eq!(g.num_vertices(), 6);
        // 2x3 grid: 7 undirected edges = 14 directed.
        assert_eq!(g.num_edges(), 14);
        // Corner (0,0) has 2 neighbors: right (1) and down (3).
        let mut nb = g.neighbors(0).to_vec();
        nb.sort_unstable();
        assert_eq!(nb, vec![1, 3]);
    }

    #[test]
    fn interior_degree_is_four() {
        let g = grid2d(10, 10);
        // Vertex (5,5) = 55 is interior.
        assert_eq!(g.degree(55), 4);
        // Corner degree 2.
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn symmetric_and_regularish() {
        let g = grid2d(20, 20);
        assert!(g.is_symmetric());
        let s = DegreeStats::of(&g);
        assert!(s.max <= 4);
        assert!(s.cv < 0.3, "cv={}", s.cv);
    }

    #[test]
    fn degenerate_line() {
        let g = grid2d(5, 1);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }
}
