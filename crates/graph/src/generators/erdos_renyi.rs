//! Erdős–Rényi uniform random graphs — the paper's "Random" datasets.
//! Degrees concentrate tightly around the mean (binomial), so these graphs
//! have *low* intra-warp imbalance: the control group for the RMAT family.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `G(n, m)`: exactly `m` directed edges chosen uniformly (self-loops
/// excluded, parallel edges possible but rare for sparse graphs).
pub fn erdos_renyi(n: u32, m: u64, seed: u64) -> Csr {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        edges.push((u, v));
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn exact_edge_count_and_determinism() {
        let g = erdos_renyi(500, 3000, 9);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 3000);
        assert_eq!(g, erdos_renyi(500, 3000, 9));
        assert_ne!(g, erdos_renyi(500, 3000, 10));
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(100, 1000, 1);
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn degrees_concentrate_near_mean() {
        let g = erdos_renyi(2000, 32_000, 11);
        let s = DegreeStats::of(&g);
        // Binomial with mean 16: CV ≈ 1/4, max well under 4x mean.
        assert!(s.cv < 0.5, "cv={}", s.cv);
        assert!(
            (s.max as f64) < 4.0 * s.mean,
            "max={} mean={}",
            s.max,
            s.mean
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_n_rejected() {
        let _ = erdos_renyi(1, 0, 0);
    }
}
