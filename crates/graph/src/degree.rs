//! Degree-distribution statistics.
//!
//! The paper's story is driven by degree-distribution *shape*: heavy tails
//! cause intra-warp workload imbalance. These statistics quantify that
//! shape for the dataset table (T1) and for checking generated stand-ins
//! against their real-graph templates.

use crate::csr::Csr;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: u32,
    pub max: u32,
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`) — the paper-relevant
    /// imbalance proxy. 0 for regular graphs, ≫ 1 for hub-dominated ones.
    pub cv: f64,
    /// 50th / 90th / 99th percentile degrees.
    pub p50: u32,
    pub p90: u32,
    pub p99: u32,
    /// Fraction of all edges owned by the top 1% highest-degree vertices.
    pub top1pct_edge_share: f64,
}

impl DegreeStats {
    /// Compute statistics for `g`'s out-degrees.
    pub fn of(g: &Csr) -> DegreeStats {
        let n = g.num_vertices();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
                cv: 0.0,
                p50: 0,
                p90: 0,
                p99: 0,
                top1pct_edge_share: 0.0,
            };
        }
        let mut degs: Vec<u32> = (0..n).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let m: u64 = degs.iter().map(|&d| d as u64).sum();
        let mean = m as f64 / n as f64;
        let var = degs
            .iter()
            .map(|&d| {
                let x = d as f64 - mean;
                x * x
            })
            .sum::<f64>()
            / n as f64;
        let std_dev = var.sqrt();
        let pct = |p: f64| degs[((n as f64 - 1.0) * p) as usize];
        let top_count = ((n as f64) * 0.01).ceil() as usize;
        let top_edges: u64 = degs[n as usize - top_count..]
            .iter()
            .map(|&d| d as u64)
            .sum();
        DegreeStats {
            min: degs[0],
            max: degs.last().copied().unwrap_or(0),
            mean,
            std_dev,
            cv: if mean > 0.0 { std_dev / mean } else { 0.0 },
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            top1pct_edge_share: if m > 0 {
                top_edges as f64 / m as f64
            } else {
                0.0
            },
        }
    }
}

/// Log-2 bucketed degree histogram: `buckets[k]` counts vertices with
/// degree in `[2^(k-1)+1 .. 2^k]` (bucket 0 counts degree-0, bucket 1
/// counts degree-1).
pub fn degree_histogram_log2(g: &Csr) -> Vec<u64> {
    let mut buckets = vec![0u64; 34];
    for v in 0..g.num_vertices() {
        let d = g.degree(v);
        let b = if d == 0 {
            0
        } else {
            (32 - (d - 1).leading_zeros()) as usize + 1
        };
        buckets[b.min(33)] += 1;
    }
    while buckets.len() > 1 && buckets.last() == Some(&0) {
        buckets.pop();
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graph_has_zero_cv() {
        // Ring: every vertex degree 1.
        let edges: Vec<(u32, u32)> = (0..8u32).map(|v| (v, (v + 1) % 8)).collect();
        let g = Csr::from_edges(8, &edges);
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.p50, 1);
        assert_eq!(s.p99, 1);
    }

    #[test]
    fn hub_graph_has_high_cv_and_edge_share() {
        // Star with 100 leaves: hub owns all edges.
        let n = 101u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let g = Csr::from_edges(n, &edges);
        let s = DegreeStats::of(&g);
        assert_eq!(s.max, 100);
        assert_eq!(s.min, 0);
        assert!(s.cv > 5.0, "cv={}", s.cv);
        assert!((s.top1pct_edge_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let s = DegreeStats::of(&Csr::empty(0));
        assert_eq!(s.max, 0);
        assert_eq!(s.cv, 0.0);
        let s2 = DegreeStats::of(&Csr::empty(5));
        assert_eq!(s2.mean, 0.0);
        assert_eq!(s2.top1pct_edge_share, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        // Degrees: 0, 1, 2, 3, 4 over five vertices.
        let mut edges = Vec::new();
        for v in 1..5u32 {
            for k in 0..v {
                edges.push((v, k % 5));
            }
        }
        let g = Csr::from_edges(5, &edges);
        let h = degree_histogram_log2(&g);
        assert_eq!(h[0], 1); // degree 0
        assert_eq!(h[1], 1); // degree 1
        assert_eq!(h[2], 1); // degree 2
        assert_eq!(h[3], 2); // degrees 3..4
    }

    #[test]
    fn percentiles_ordered() {
        let edges: Vec<(u32, u32)> = (0..1000u32)
            .flat_map(|v| (0..(v % 17)).map(move |k| (v, (v + k + 1) % 1000)))
            .collect();
        let g = Csr::from_edges(1000, &edges);
        let s = DegreeStats::of(&g);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!(s.min <= s.p50);
    }
}
