//! Deterministic subgraph sampling for the online autotuner.
//!
//! Probing every candidate method on a million-edge graph would cost more
//! than it saves, so the tuner measures candidates on an induced subgraph:
//! a uniform vertex sample (seeded, reproducible) whose induced edges keep
//! roughly the degree *shape* of the original — hubs survive with their
//! degree scaled by the sampling fraction, low-degree vertices stay
//! low-degree — which is the property the best-method decision depends on.

use crate::csr::Csr;

/// xorshift64* step — the same tiny generator the fault injector uses.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform induced-subgraph sample of up to `target_n` vertices, seeded.
///
/// Returns `(subgraph, kept)` where `kept[i]` is the original id of the
/// sample's vertex `i` (ascending). If `target_n >= n` the whole graph is
/// returned with the identity mapping — callers can rely on the sample
/// being *exactly* the input graph in that case, which makes small-graph
/// tuning decisions directly comparable to full-graph sweeps.
pub fn induced_sample(g: &Csr, target_n: u32, seed: u64) -> (Csr, Vec<u32>) {
    let n = g.num_vertices();
    if target_n >= n {
        return (g.clone(), (0..n).collect());
    }
    // Partial Fisher-Yates over the id space: pick target_n distinct ids.
    let mut ids: Vec<u32> = (0..n).collect();
    let mut state = seed | 1; // xorshift must not start at 0
    for i in 0..target_n as usize {
        let j = i + (xorshift(&mut state) % (n as u64 - i as u64)) as usize;
        ids.swap(i, j);
    }
    let mut kept = ids[..target_n as usize].to_vec();
    kept.sort_unstable();

    // Old id -> new id; u32::MAX marks dropped vertices.
    let mut remap = vec![u32::MAX; n as usize];
    for (new, &old) in kept.iter().enumerate() {
        remap[old as usize] = new as u32;
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (new, &old) in kept.iter().enumerate() {
        for &v in g.neighbors(old) {
            let nv = remap[v as usize];
            if nv != u32::MAX {
                edges.push((new as u32, nv));
            }
        }
    }
    (Csr::from_edges(target_n, &edges), kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::hub_graph;

    #[test]
    fn oversized_target_returns_whole_graph() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let (s, kept) = induced_sample(&g, 10, 42);
        assert_eq!(s, g);
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn sample_is_deterministic_and_seed_sensitive() {
        let g = hub_graph(500, 2, 100, 2, 9);
        let (a, ka) = induced_sample(&g, 100, 7);
        let (b, kb) = induced_sample(&g, 100, 7);
        assert_eq!(a, b);
        assert_eq!(ka, kb);
        let (_, kc) = induced_sample(&g, 100, 8);
        assert_ne!(ka, kc, "different seed, different sample");
    }

    #[test]
    fn induced_edges_exist_in_original() {
        let g = hub_graph(300, 2, 80, 2, 3);
        let (s, kept) = induced_sample(&g, 60, 1);
        assert_eq!(s.num_vertices(), 60);
        for (u, v) in s.edges() {
            let (ou, ov) = (kept[u as usize], kept[v as usize]);
            assert!(
                g.neighbors(ou).contains(&ov),
                "sampled edge ({u},{v}) has no original ({ou},{ov})"
            );
        }
    }

    #[test]
    fn hub_skew_survives_sampling() {
        // A graph where a few vertices own most edges must still have a
        // heavy max/mean degree ratio after a 1-in-5 vertex sample.
        let g = hub_graph(2000, 4, 800, 2, 11);
        let (s, _) = induced_sample(&g, 400, 5);
        assert!(s.num_edges() > 0);
        let ratio = s.max_degree() as f64 / s.mean_degree().max(1e-9);
        assert!(ratio > 10.0, "hub skew lost: ratio {ratio}");
    }
}
