//! On-disk cache for generated graphs.
//!
//! The experiment bins and the serving layer all build the same synthetic
//! datasets — sixteen binaries regenerating an identical medium-scale RMAT
//! is pure waste. This cache stores built graphs as binary CSR files keyed
//! by the *generator recipe* (generator name, scale, seed, degree knobs):
//! the key must be a pure function of everything that determines the
//! output, so a recipe change can never serve a stale graph.
//!
//! Layout: `<dir>/<slug>-<fnv64(key)>.csr`, stored through the
//! [`crate::atomic`] layer: a checksummed header over the binary CSR
//! payload, published by temp-file + rename so concurrent builders —
//! harness workers, parallel CI jobs — race benignly: both write identical
//! bytes, last rename wins.
//!
//! The directory is resolved from `MAXWARP_GRAPH_CACHE`:
//! * unset → `target/graph-cache` under the current directory;
//! * a path → that directory;
//! * `0` / `off` → caching disabled (every build runs the generator).
//!
//! Every failure mode (unreadable file, corrupt bytes, read-only disk)
//! degrades to regenerating the graph; the cache is never load-bearing for
//! correctness. A truncated or bit-flipped cache file is additionally
//! **quarantined** (moved aside to `<name>.csr.corrupt`) before the
//! rebuild, mirroring the tuning-table recovery path, so corruption leaves
//! evidence instead of being silently overwritten.

use crate::atomic::{self, Recovered};
use crate::csr::Csr;
use crate::digest::Fnv64;
use crate::io::{decode_csr, encode_csr};
use std::path::{Path, PathBuf};

/// Resolve the cache directory from the environment (see module docs).
pub fn cache_dir() -> Option<PathBuf> {
    match std::env::var("MAXWARP_GRAPH_CACHE") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => None,
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => Some(PathBuf::from("target/graph-cache")),
    }
}

/// File name for a recipe key: a readable slug plus the full key's hash.
fn file_name(key: &str) -> String {
    let slug: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .take(48)
        .collect();
    format!("{slug}-{:016x}.csr", Fnv64::new().str(key).finish())
}

/// Fetch the graph for `key` from `dir`, or build and store it.
///
/// A present-but-damaged file (truncation, bit flip, a legacy un-headered
/// image, or a valid frame whose CSR payload fails to decode) is
/// quarantined and the graph rebuilt; the rebuild republishes a clean
/// entry, so the next lookup hits again.
pub fn cached_or_build_in(dir: &Path, key: &str, build: impl FnOnce() -> Csr) -> Csr {
    let path = dir.join(file_name(key));
    match atomic::read_or_quarantine(&path) {
        Recovered::Ok(payload) => match decode_csr(&payload) {
            Ok(g) => return g,
            Err(e) => {
                // Frame verified but the CSR inside is invalid (e.g. a
                // stale format): same recovery as a bad frame.
                if let Some(q) = atomic::quarantine(&path) {
                    eprintln!(
                        "[graph-cache] quarantined undecodable entry {} -> {} ({e})",
                        path.display(),
                        q.display()
                    );
                }
            }
        },
        Recovered::Missing => {}
        Recovered::Quarantined(q, msg) => {
            eprintln!(
                "[graph-cache] quarantined corrupt entry {}{} ({msg}); rebuilding",
                path.display(),
                q.map(|p| format!(" -> {}", p.display()))
                    .unwrap_or_default()
            );
        }
    }
    let g = build();
    // Atomic checksummed publish; failures (read-only disk) only cost the
    // next builder a regeneration.
    let _ = atomic::write(&path, &encode_csr(&g));
    g
}

/// Derive a cache key for one shard of a partitioned graph from the base
/// recipe key. The partition spec (shard count, cut strategy, shard index)
/// is folded into the key so sharded local CSRs can never collide with the
/// whole-graph entry for the same recipe — or with a different cut of the
/// same graph. Keep every determinant of the local CSR in `cut`'s label
/// (the strategy name is enough today because cuts are deterministic
/// functions of the graph).
pub fn partitioned_key(base: &str, shards: u32, cut: &str, shard: u32) -> String {
    format!("{base}+part{shards}x{cut}#{shard}")
}

/// Fetch the graph for `key` from the environment-resolved cache directory,
/// or build it (and store it unless caching is disabled).
pub fn cached_or_build(key: &str, build: impl FnOnce() -> Csr) -> Csr {
    match cache_dir() {
        Some(dir) => cached_or_build_in(&dir, key, build),
        None => build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("maxwarp-graph-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn second_lookup_skips_the_builder() {
        let dir = tmpdir("hit");
        let builds = AtomicU32::new(0);
        let mk = || {
            builds.fetch_add(1, Ordering::Relaxed);
            Csr::from_edges(3, &[(0, 1), (1, 2)])
        };
        let a = cached_or_build_in(&dir, "k1", mk);
        let b = cached_or_build_in(&dir, "k1", mk);
        assert_eq!(a, b);
        assert_eq!(builds.load(Ordering::Relaxed), 1, "second call was a hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_keys_do_not_collide() {
        let dir = tmpdir("keys");
        let a = cached_or_build_in(&dir, "ka", || Csr::from_edges(2, &[(0, 1)]));
        let b = cached_or_build_in(&dir, "kb", || Csr::from_edges(2, &[(1, 0)]));
        assert_ne!(a, b);
        // And each key still returns its own graph.
        let a2 = cached_or_build_in(&dir, "ka", || unreachable!("must hit"));
        assert_eq!(a, a2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_quarantined_then_rebuilt() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let entry = dir.join(file_name("kc"));
        std::fs::write(&entry, b"not a csr file").unwrap();
        let g = cached_or_build_in(&dir, "kc", || Csr::from_edges(2, &[(0, 1)]));
        assert_eq!(g.num_edges(), 1);
        // The bad bytes were moved aside as evidence, not overwritten.
        let quarantined = entry.with_file_name(format!(
            "{}.corrupt",
            entry.file_name().unwrap().to_string_lossy()
        ));
        assert!(quarantined.exists(), "corrupt entry quarantined");
        assert_eq!(std::fs::read(&quarantined).unwrap(), b"not a csr file");
        // The rebuild repaired the cache entry.
        let again = cached_or_build_in(&dir, "kc", || unreachable!("must hit"));
        assert_eq!(again, g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_bitflipped_files_recover() {
        let dir = tmpdir("damage");
        let mk = || Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let reference = mk();
        let entry = dir.join(file_name("kd"));
        for damage in 0..3 {
            let _ = cached_or_build_in(&dir, "kd", mk); // seed a clean entry
            let mut bytes = std::fs::read(&entry).unwrap();
            match damage {
                0 => bytes.truncate(bytes.len() / 2),
                1 => {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x10;
                }
                _ => bytes.truncate(0),
            }
            std::fs::write(&entry, &bytes).unwrap();
            let g = cached_or_build_in(&dir, "kd", mk);
            assert_eq!(g, reference, "damage mode {damage}");
            // Recovered entry serves hits again.
            let hit = cached_or_build_in(&dir, "kd", || unreachable!("must hit"));
            assert_eq!(hit, reference);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_dir_still_builds() {
        // A path that cannot be a directory (a file stands in the way).
        let base = tmpdir("blocked");
        std::fs::create_dir_all(&base).unwrap();
        let blocked = base.join("file");
        std::fs::write(&blocked, b"x").unwrap();
        let g = cached_or_build_in(&blocked.join("sub"), "k", || Csr::from_edges(2, &[(0, 1)]));
        assert_eq!(g.num_edges(), 1);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn partitioned_keys_never_collide_with_base_or_each_other() {
        let base = "rmat-Tiny-seed1-v1";
        let mut keys = vec![base.to_string()];
        for shards in [2u32, 4, 8] {
            for cut in ["block", "degree", "bfs"] {
                for s in 0..shards {
                    keys.push(partitioned_key(base, shards, cut, s));
                }
            }
        }
        // Pairwise distinct keys and pairwise distinct cache file names.
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
                assert_ne!(file_name(&keys[i]), file_name(&keys[j]), "{}", keys[i]);
            }
        }
    }

    #[test]
    fn file_names_are_filesystem_safe() {
        let n = file_name("RMAT scale=14 seed=0xC0FFEE deg=8/weird:chars");
        assert!(n.ends_with(".csr"));
        assert!(n
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'));
    }
}
