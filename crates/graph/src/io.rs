//! Graph serialization: SNAP-style edge-list text and a compact binary
//! format.

use crate::csr::Csr;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Magic bytes of the binary CSR format.
const MAGIC: &[u8; 6] = b"MWCSR1";

/// Errors from decoding graph files.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Binary header or structure invalid.
    Format(String),
    /// Text edge list malformed at the given 1-based line.
    Parse { line: usize, msg: String },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "io error: {e}"),
            GraphIoError::Format(m) => write!(f, "bad graph file: {m}"),
            GraphIoError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

// ------------------------------------------------------------- edge lists

/// Write a SNAP-style edge list: one `src dst` pair per line, `#` comments.
pub fn write_edge_list<W: Write>(g: &Csr, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# maxwarp edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    Ok(())
}

/// Read a SNAP-style edge list. Vertex count is `max id + 1` unless a
/// larger `min_vertices` is given.
pub fn read_edge_list<R: BufRead>(r: R, min_vertices: u32) -> Result<Csr, GraphIoError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |s: Option<&str>| -> Result<u32, GraphIoError> {
            s.ok_or_else(|| GraphIoError::Parse {
                line: i + 1,
                msg: "expected two vertex ids".into(),
            })?
            .parse()
            .map_err(|e| GraphIoError::Parse {
                line: i + 1,
                msg: format!("bad vertex id: {e}"),
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        if parts.next().is_some() {
            return Err(GraphIoError::Parse {
                line: i + 1,
                msg: "trailing tokens".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        (max_id + 1).max(min_vertices)
    };
    Ok(Csr::from_edges(n, &edges))
}

// ------------------------------------------------------------- binary CSR

/// Encode to the compact binary CSR format.
pub fn encode_csr(g: &Csr) -> Bytes {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 12 + 4 * (n as usize + 1) + 4 * m as usize);
    buf.put_slice(MAGIC);
    buf.put_u32_le(n);
    buf.put_u64_le(m);
    for &o in g.row_offsets() {
        buf.put_u32_le(o);
    }
    for &c in g.col_indices() {
        buf.put_u32_le(c);
    }
    buf.freeze()
}

/// Decode the binary CSR format.
pub fn decode_csr(mut data: &[u8]) -> Result<Csr, GraphIoError> {
    if data.len() < MAGIC.len() + 12 {
        return Err(GraphIoError::Format("truncated header".into()));
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(GraphIoError::Format("bad magic".into()));
    }
    data.advance(MAGIC.len());
    let n = data.get_u32_le() as usize;
    let m = data.get_u64_le() as usize;
    let need = 4 * (n + 1) + 4 * m;
    if data.remaining() != need {
        return Err(GraphIoError::Format(format!(
            "payload size {} != expected {need}",
            data.remaining()
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(data.get_u32_le());
    }
    let mut cols = Vec::with_capacity(m);
    for _ in 0..m {
        cols.push(data.get_u32_le());
    }
    // Re-validate invariants; corrupt files must not panic later.
    if offsets.first() != Some(&0)
        || !offsets.windows(2).all(|w| w[0] <= w[1])
        || offsets.last().map(|&o| o as usize) != Some(m)
        || cols.iter().any(|&c| c as usize >= n)
    {
        return Err(GraphIoError::Format("CSR invariants violated".into()));
    }
    Ok(Csr::from_raw(offsets, cols))
}

/// Save to a file in binary CSR format.
pub fn save_csr(g: &Csr, path: &Path) -> Result<(), GraphIoError> {
    std::fs::write(path, encode_csr(g))?;
    Ok(())
}

/// Load a binary CSR file.
pub fn load_csr(path: &Path) -> Result<Csr, GraphIoError> {
    let data = std::fs::read(path)?;
    decode_csr(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use std::io::BufReader;

    #[test]
    fn edge_list_roundtrip() {
        let g = erdos_renyi(200, 1000, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(BufReader::new(&buf[..]), g.num_vertices()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n1 2\n# trailing\n";
        let g = read_edge_list(BufReader::new(text.as_bytes()), 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_bad_lines_error() {
        for bad in ["0", "0 1 2", "x y"] {
            let r = read_edge_list(BufReader::new(bad.as_bytes()), 0);
            assert!(matches!(r, Err(GraphIoError::Parse { .. })), "{bad}");
        }
    }

    #[test]
    fn empty_edge_list_uses_min_vertices() {
        let g = read_edge_list(BufReader::new("# nothing\n".as_bytes()), 7).unwrap();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        let g = erdos_renyi(333, 2222, 5);
        let bytes = encode_csr(&g);
        let g2 = decode_csr(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = erdos_renyi(50, 100, 1);
        let bytes = encode_csr(&g);
        // Truncated.
        assert!(decode_csr(&bytes[..bytes.len() - 4]).is_err());
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode_csr(&bad).is_err());
        // Corrupt a column index to out-of-range.
        let mut bad2 = bytes.to_vec();
        let off = bad2.len() - 4;
        bad2[off..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_csr(&bad2).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("maxwarp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mwcsr");
        let g = erdos_renyi(64, 256, 9);
        save_csr(&g, &path).unwrap();
        let g2 = load_csr(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
