//! Graph cleaning and preparation utilities.
//!
//! Real edge lists arrive messy: duplicate edges, self-loops, many small
//! components. [`GraphBuilder`] canonicalizes them, and
//! [`largest_component`] extracts the giant component (the paper-style
//! convention for picking BFS sources that reach most of the graph).

use crate::csr::Csr;
use crate::reference::connected_components;

/// Accumulates edges and builds a cleaned CSR.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32)>,
    max_id: u32,
    remove_self_loops: bool,
    dedup: bool,
    symmetrize: bool,
}

impl GraphBuilder {
    /// An empty builder with no cleaning enabled.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Drop `(v, v)` edges.
    pub fn remove_self_loops(mut self) -> Self {
        self.remove_self_loops = true;
        self
    }

    /// Drop duplicate `(u, v)` pairs.
    pub fn dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Add the reverse of every edge (and dedup the result).
    pub fn symmetrize(mut self) -> Self {
        self.symmetrize = true;
        self.dedup = true;
        self
    }

    /// Add one edge.
    pub fn add_edge(&mut self, u: u32, v: u32) -> &mut Self {
        self.max_id = self.max_id.max(u).max(v);
        self.edges.push((u, v));
        self
    }

    /// Add many edges.
    pub fn extend(&mut self, it: impl IntoIterator<Item = (u32, u32)>) -> &mut Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of raw edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edge has been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Build the CSR with at least `min_vertices` vertices.
    pub fn build(mut self, min_vertices: u32) -> Csr {
        if self.remove_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        if self.symmetrize {
            let rev: Vec<(u32, u32)> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
            self.edges.extend(rev);
        }
        if self.dedup {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        let n = if self.edges.is_empty() {
            min_vertices
        } else {
            (self.max_id + 1).max(min_vertices)
        };
        let mut g = Csr::from_edges(n, &self.edges);
        g.sort_neighbors();
        g
    }
}

/// Extract the largest (weakly) connected component: returns the induced
/// subgraph with vertices renumbered densely, plus the mapping
/// `old_id -> Some(new_id)` for retained vertices.
pub fn largest_component(g: &Csr) -> (Csr, Vec<Option<u32>>) {
    let labels = connected_components(g);
    // Find the most frequent label.
    let mut counts = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0u32) += 1;
    }
    let Some((&giant, _)) = counts
        .iter()
        .max_by_key(|&(&l, &c)| (c, std::cmp::Reverse(l)))
    else {
        // Zero-vertex graph: the largest component is itself empty.
        return (Csr::from_edges(0, &[]), Vec::new());
    };
    // Dense renumbering of the giant component.
    let mut map = vec![None; g.num_vertices() as usize];
    let mut next = 0u32;
    for v in 0..g.num_vertices() {
        if labels[v as usize] == giant {
            map[v as usize] = Some(next);
            next += 1;
        }
    }
    let edges: Vec<(u32, u32)> = g
        .edges()
        .filter_map(|(u, v)| Some((map[u as usize]?, map[v as usize]?)))
        .collect();
    let mut sub = Csr::from_edges(next, &edges);
    sub.sort_neighbors();
    (sub, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn builder_cleans_edges() {
        let mut b = GraphBuilder::new().remove_self_loops().dedup();
        b.extend([(0, 1), (0, 1), (1, 1), (2, 0)]);
        assert_eq!(b.len(), 4);
        let g = b.build(0);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2); // (0,1) deduped, (1,1) dropped
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn builder_symmetrizes() {
        let mut b = GraphBuilder::new().symmetrize();
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build(0);
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn builder_min_vertices_and_empty() {
        let b = GraphBuilder::new();
        assert!(b.is_empty());
        let g = b.build(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn largest_component_extracts_giant() {
        // Component A: 0-1-2 (3 vertices); component B: 3-4 (2 vertices);
        // isolated: 5.
        let g = Csr::from_edges(6, &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]);
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 4);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[2], Some(2));
        assert_eq!(map[3], None);
        assert_eq!(map[5], None);
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity_shaped() {
        let g = erdos_renyi(200, 4000, 1).symmetrize();
        let (sub, map) = largest_component(&g);
        // Dense ER is almost surely connected.
        assert_eq!(sub.num_vertices(), 200);
        assert!(map.iter().all(|m| m.is_some()));
        assert_eq!(sub.num_edges(), g.num_edges());
    }

    #[test]
    fn largest_component_bfs_covers_everything() {
        use crate::reference::bfs_levels;
        let g = Csr::from_edges(10, &[(0, 1), (1, 0), (5, 6), (6, 5), (6, 7), (7, 6)]);
        let (sub, _) = largest_component(&g);
        let lv = bfs_levels(&sub, 0);
        assert!(
            lv.iter().all(|&l| l != u32::MAX),
            "giant component is connected"
        );
    }
}
