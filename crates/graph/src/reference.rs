//! Sequential reference implementations.
//!
//! Every GPU kernel result in the workspace is validated against these.
//! They favour obviousness over speed (the fast CPU baselines live in
//! `maxwarp-cpu`).

use crate::csr::Csr;
use std::collections::{BinaryHeap, VecDeque};

/// Level assigned to unreachable vertices.
pub const INF_LEVEL: u32 = u32::MAX;

/// Distance assigned to unreachable vertices.
pub const INF_DIST: u32 = u32::MAX;

/// BFS levels from `src` (0 at the source, `INF_LEVEL` if unreachable).
pub fn bfs_levels(g: &Csr, src: u32) -> Vec<u32> {
    assert!(src < g.num_vertices());
    let mut levels = vec![INF_LEVEL; g.num_vertices() as usize];
    levels[src as usize] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let next = levels[u as usize] + 1;
        for &v in g.neighbors(u) {
            if levels[v as usize] == INF_LEVEL {
                levels[v as usize] = next;
                q.push_back(v);
            }
        }
    }
    levels
}

/// Single-source shortest paths with non-negative `u32` weights (aligned
/// with `g.col_indices()`), via Dijkstra. Distances saturate below
/// `INF_DIST`.
pub fn sssp_dijkstra(g: &Csr, weights: &[u32], src: u32) -> Vec<u32> {
    assert_eq!(weights.len() as u64, g.num_edges(), "one weight per edge");
    assert!(src < g.num_vertices());
    let mut dist = vec![INF_DIST; g.num_vertices() as usize];
    dist[src as usize] = 0;
    // Max-heap of Reverse((dist, vertex)).
    let mut heap = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u32, src)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        let row = g.row_offsets()[u as usize] as usize;
        for (k, &v) in g.neighbors(u).iter().enumerate() {
            let w = weights[row + k];
            let nd = d.saturating_add(w).min(INF_DIST - 1);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Connected components, treating every edge as undirected. Returns per-
/// vertex labels where each component's label is its smallest vertex id.
pub fn connected_components(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    for (u, v) in g.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            // Union by smaller label so roots are component minima.
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// PageRank with uniform teleport, `iters` synchronous iterations,
/// damping `d`. Dangling mass is redistributed uniformly. Returns `f64`
/// ranks summing to ~1.
pub fn pagerank(g: &Csr, iters: u32, d: f64) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        let mut dangling = 0.0;
        next.fill(0.0);
        for u in 0..n as u32 {
            let deg = g.degree(u);
            if deg == 0 {
                dangling += rank[u as usize];
            } else {
                let share = rank[u as usize] / deg as f64;
                for &v in g.neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        for r in next.iter_mut() {
            *r = base + d * *r;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Brandes betweenness centrality restricted to the given source set
/// (unnormalized; full BC uses all vertices as sources, which is O(nm) —
/// GPU evaluations conventionally sample sources).
///
/// Shortest-path counts are kept in `f64`: on meshes they grow like
/// central binomial coefficients and overflow any integer type.
pub fn betweenness(g: &Csr, sources: &[u32]) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
        // Forward phase: BFS computing shortest-path counts.
        let mut level = vec![u32::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        level[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            order.push(u);
            let next = level[u as usize] + 1;
            for &v in g.neighbors(u) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = next;
                    q.push_back(v);
                }
                if level[v as usize] == next {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        // Backward phase: dependency accumulation in reverse BFS order.
        let mut delta = vec![0.0f64; n];
        for &u in order.iter().rev() {
            let next = level[u as usize] + 1;
            for &v in g.neighbors(u) {
                if level[v as usize] == next {
                    delta[u as usize] +=
                        sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            if u != s {
                bc[u as usize] += delta[u as usize];
            }
        }
    }
    bc
}

/// Greedy sequential graph coloring (first-fit in vertex order) on a
/// symmetric graph; returns per-vertex colors. Uses at most `max_degree+1`
/// colors — the comparison bound for the parallel coloring kernels.
pub fn greedy_coloring(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut colors = vec![u32::MAX; n];
    let mut forbidden: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        forbidden.clear();
        for &u in g.neighbors(v) {
            if colors[u as usize] != u32::MAX {
                forbidden.push(colors[u as usize]);
            }
        }
        forbidden.sort_unstable();
        let mut c = 0u32;
        for &f in &forbidden {
            if f == c {
                c += 1;
            } else if f > c {
                break;
            }
        }
        colors[v as usize] = c;
    }
    colors
}

/// True if no edge connects two vertices of the same color and every
/// vertex is colored.
pub fn is_proper_coloring(g: &Csr, colors: &[u32]) -> bool {
    if colors.len() as u32 != g.num_vertices() {
        return false;
    }
    if colors.contains(&u32::MAX) {
        return false;
    }
    g.edges()
        .all(|(u, v)| u == v || colors[u as usize] != colors[v as usize])
}

/// Number of distinct values in a label array (component count).
pub fn count_distinct(labels: &[u32]) -> usize {
    let mut l = labels.to_vec();
    l.sort_unstable();
    l.dedup();
    l.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, grid2d, random_weights};

    fn path4() -> Csr {
        // 0 - 1 - 2 - 3 (symmetric), 4 isolated
        Csr::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
    }

    #[test]
    fn bfs_on_path() {
        let g = path4();
        let lv = bfs_levels(&g, 0);
        assert_eq!(lv, vec![0, 1, 2, 3, INF_LEVEL]);
        let lv2 = bfs_levels(&g, 2);
        assert_eq!(lv2, vec![2, 1, 0, 1, INF_LEVEL]);
    }

    #[test]
    fn bfs_on_grid_diameter() {
        let g = grid2d(10, 10);
        let lv = bfs_levels(&g, 0);
        // Manhattan distance to opposite corner.
        assert_eq!(lv[99], 18);
        assert!(lv.iter().all(|&l| l != INF_LEVEL));
    }

    #[test]
    fn sssp_unit_weights_matches_bfs() {
        let g = erdos_renyi(300, 2400, 4);
        let w = vec![1u32; g.num_edges() as usize];
        let d = sssp_dijkstra(&g, &w, 0);
        let lv = bfs_levels(&g, 0);
        for v in 0..300 {
            if lv[v] == INF_LEVEL {
                assert_eq!(d[v], INF_DIST);
            } else {
                assert_eq!(d[v], lv[v]);
            }
        }
    }

    #[test]
    fn sssp_prefers_cheap_detour() {
        // 0->1 cost 10; 0->2 cost 1, 2->1 cost 1.
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
        let d = sssp_dijkstra(&g, &[10, 1, 1], 0);
        assert_eq!(d, vec![0, 2, 1]);
    }

    #[test]
    fn components_on_disconnected_graph() {
        let g = path4();
        let cc = connected_components(&g);
        assert_eq!(cc, vec![0, 0, 0, 0, 4]);
        assert_eq!(count_distinct(&cc), 2);
    }

    #[test]
    fn components_ignore_direction() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 1), (3, 2)]);
        let cc = connected_components(&g);
        assert!(cc.iter().all(|&c| c == 0));
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_highest() {
        // Star pointing at vertex 0.
        let edges: Vec<(u32, u32)> = (1..50u32).map(|v| (v, 0)).collect();
        let g = Csr::from_edges(50, &edges);
        let pr = pagerank(&g, 30, 0.85);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        for v in 1..50 {
            assert!(pr[0] > pr[v]);
        }
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let edges: Vec<(u32, u32)> = (0..8u32).map(|v| (v, (v + 1) % 8)).collect();
        let g = Csr::from_edges(8, &edges);
        let pr = pagerank(&g, 50, 0.85);
        for p in &pr {
            assert!((p - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_handles_dangling() {
        // 0 -> 1, 1 dangling.
        let g = Csr::from_edges(2, &[(0, 1)]);
        let pr = pagerank(&g, 40, 0.85);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[1] > pr[0]);
    }

    #[test]
    fn betweenness_on_path() {
        // Path 0-1-2-3-4 (symmetric): with all sources, interior vertices
        // carry the classic values 2*(k*(n-1-k)) pairs... check vertex 2 is
        // the maximum and endpoints are 0.
        let mut edges = Vec::new();
        for v in 0..4u32 {
            edges.push((v, v + 1));
            edges.push((v + 1, v));
        }
        let g = Csr::from_edges(5, &edges);
        let sources: Vec<u32> = (0..5).collect();
        let bc = betweenness(&g, &sources);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
        assert!(bc[2] > bc[1] && bc[2] > bc[3]);
        // Path BC (directed sum over ordered pairs): v1 carries (1,3)x2
        // pairs... exact: bc[k] = 2*k*(4-k) for path of 5? vertex1: pairs
        // {0}x{2,3,4} and reverse = 6; vertex2: {0,1}x{3,4} x2 = 8.
        assert!((bc[1] - 6.0).abs() < 1e-9, "{}", bc[1]);
        assert!((bc[2] - 8.0).abs() < 1e-9, "{}", bc[2]);
    }

    #[test]
    fn betweenness_star_center_carries_all() {
        let mut edges = Vec::new();
        for v in 1..6u32 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        let g = Csr::from_edges(6, &edges);
        let sources: Vec<u32> = (0..6).collect();
        let bc = betweenness(&g, &sources);
        // Center mediates all 5*4 ordered leaf pairs.
        assert!((bc[0] - 20.0).abs() < 1e-9, "{}", bc[0]);
        for b in &bc[1..6] {
            assert_eq!(*b, 0.0);
        }
    }

    #[test]
    fn betweenness_subset_of_sources() {
        let g = erdos_renyi(100, 800, 5).symmetrize();
        let all: Vec<u32> = (0..100).collect();
        let bc_all = betweenness(&g, &all);
        let bc_one = betweenness(&g, &[0]);
        for v in 0..100 {
            assert!(bc_one[v] <= bc_all[v] + 1e-9);
        }
    }

    #[test]
    fn greedy_coloring_is_proper() {
        let g = erdos_renyi(300, 3000, 7).symmetrize();
        let colors = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        let max_deg = (0..300).map(|v| g.degree(v)).max().unwrap();
        assert!(*colors.iter().max().unwrap() <= max_deg);
    }

    #[test]
    fn coloring_validator_catches_errors() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0)]);
        assert!(is_proper_coloring(&g, &[0, 1, 0]));
        assert!(!is_proper_coloring(&g, &[0, 0, 1]), "adjacent same color");
        assert!(!is_proper_coloring(&g, &[0, 1]), "wrong length");
        assert!(!is_proper_coloring(&g, &[0, u32::MAX, 0]), "uncolored");
    }

    #[test]
    fn grid_is_two_colorable() {
        let g = grid2d(8, 8);
        let colors = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        assert!(*colors.iter().max().unwrap() <= 1, "meshes are bipartite");
    }

    #[test]
    fn weights_align_with_edges() {
        let g = erdos_renyi(100, 500, 8);
        let w = random_weights(&g, 8, 1);
        let d = sssp_dijkstra(&g, &w, 0);
        assert_eq!(d[0], 0);
    }
}
