//! Stable content digests for graphs.
//!
//! The serving layer keys its result cache and tuning table by *graph
//! content*, not by handle or name: two `Csr`s with identical topology must
//! collide, and any edit to the topology must change the key. A 64-bit
//! FNV-1a over the raw CSR arrays is enough — the digest guards cache
//! identity inside one trusted process, not an adversary.

use crate::csr::Csr;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher shared by all digest-style keys in the
/// workspace (graph content, query params, device fingerprints).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Fold one byte.
    #[inline]
    pub fn byte(&mut self, b: u8) -> &mut Self {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        self
    }

    /// Fold a byte slice.
    pub fn bytes(&mut self, bs: &[u8]) -> &mut Self {
        for &b in bs {
            self.byte(b);
        }
        self
    }

    /// Fold a `u32` (little-endian bytes).
    #[inline]
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Fold a `u64` (little-endian bytes).
    #[inline]
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Fold an `f32` by bit pattern (total, deterministic — NaNs included).
    #[inline]
    pub fn f32(&mut self, v: f32) -> &mut Self {
        self.u32(v.to_bits())
    }

    /// Fold an `f64` by bit pattern.
    #[inline]
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Fold a string (length-prefixed so "ab"+"c" ≠ "a"+"bc").
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Content digest of a graph: a pure function of `(n, m, row_offsets,
/// col_indices)`. Isomorphic but differently-labeled graphs get different
/// digests by design — device kernels are sensitive to labeling.
pub fn csr_digest(g: &Csr) -> u64 {
    let mut h = Fnv64::new();
    h.u32(g.num_vertices());
    h.u64(g.num_edges());
    for &o in g.row_offsets() {
        h.u32(o);
    }
    for &c in g.col_indices() {
        h.u32(c);
    }
    h.finish()
}

impl Csr {
    /// Stable content digest of this graph (see [`csr_digest`]).
    pub fn digest(&self) -> u64 {
        csr_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(a.digest(), b.digest(), "same content, same digest");
        let c = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 0)]);
        assert_ne!(a.digest(), c.digest(), "one edge differs");
        let d = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        assert_ne!(a.digest(), d.digest(), "extra isolated vertex differs");
    }

    #[test]
    fn empty_graphs_distinguished_by_size() {
        assert_ne!(Csr::empty(1).digest(), Csr::empty(2).digest());
    }

    #[test]
    fn fnv_primitives_feed_distinctly() {
        let mut a = Fnv64::new();
        a.str("ab").str("c");
        let mut b = Fnv64::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefix separates strings");
        let mut f = Fnv64::new();
        f.f32(0.85);
        let mut g = Fnv64::new();
        g.f32(0.850001);
        assert_ne!(f.finish(), g.finish());
    }
}
