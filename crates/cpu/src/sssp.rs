//! CPU single-source shortest paths baselines: sequential Bellman-Ford
//! (round-based, the algorithm the GPU kernels mirror) and a parallel
//! variant with atomic relaxations.

use crate::measure::default_threads;
use maxwarp_graph::Csr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Distance of unreachable vertices.
pub const INF: u32 = u32::MAX;

/// Round-based Bellman-Ford: repeat full relaxation sweeps until a
/// fixpoint. Weights are aligned with `g.col_indices()`.
pub fn sssp_bellman_ford(g: &Csr, weights: &[u32], src: u32) -> Vec<u32> {
    assert_eq!(weights.len() as u64, g.num_edges());
    assert!(src < g.num_vertices());
    let n = g.num_vertices();
    let mut dist = vec![INF; n as usize];
    dist[src as usize] = 0;
    loop {
        let mut changed = false;
        for u in 0..n {
            let du = dist[u as usize];
            if du == INF {
                continue;
            }
            let row = g.row_offsets()[u as usize] as usize;
            for (k, &v) in g.neighbors(u).iter().enumerate() {
                let nd = du.saturating_add(weights[row + k]).min(INF - 1);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            return dist;
        }
    }
}

/// Parallel Bellman-Ford: vertices are chunked per sweep; relaxations use
/// an atomic fetch-min loop. Converges to the same fixpoint as the
/// sequential version.
pub fn sssp_parallel(g: &Csr, weights: &[u32], src: u32, threads: usize) -> Vec<u32> {
    assert_eq!(weights.len() as u64, g.num_edges());
    assert!(src < g.num_vertices());
    let threads = threads.max(1);
    let n = g.num_vertices() as usize;
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);

    loop {
        let changed = AtomicBool::new(false);
        let cursor = AtomicUsize::new(0);
        let chunk = (n / (threads * 8)).max(256);
        let scope_result = crossbeam::scope(|scope| {
            for _ in 0..threads {
                let dist = &dist;
                let changed = &changed;
                let cursor = &cursor;
                scope.spawn(move |_| loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for u in start..end {
                        let du = dist[u].load(Ordering::Relaxed);
                        if du == INF {
                            continue;
                        }
                        let row = g.row_offsets()[u] as usize;
                        for (k, &v) in g.neighbors(u as u32).iter().enumerate() {
                            let nd = du.saturating_add(weights[row + k]).min(INF - 1);
                            // Atomic fetch-min.
                            let mut cur = dist[v as usize].load(Ordering::Relaxed);
                            while nd < cur {
                                match dist[v as usize].compare_exchange_weak(
                                    cur,
                                    nd,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => {
                                        changed.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                    Err(now) => cur = now,
                                }
                            }
                        }
                    }
                });
            }
        });
        if scope_result.is_err() {
            panic!("sssp scope panicked");
        }
        if !changed.load(Ordering::Relaxed) {
            return dist.into_iter().map(|a| a.into_inner()).collect();
        }
    }
}

/// [`sssp_parallel`] with the default worker count.
pub fn sssp_parallel_default(g: &Csr, weights: &[u32], src: u32) -> Vec<u32> {
    sssp_parallel(g, weights, src, default_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::reference::sssp_dijkstra;
    use maxwarp_graph::{erdos_renyi, grid2d, random_weights};

    #[test]
    fn bellman_matches_dijkstra() {
        let g = erdos_renyi(800, 6400, 7);
        let w = random_weights(&g, 16, 1);
        assert_eq!(sssp_bellman_ford(&g, &w, 0), sssp_dijkstra(&g, &w, 0));
    }

    #[test]
    fn parallel_matches_dijkstra() {
        let g = erdos_renyi(800, 6400, 8);
        let w = random_weights(&g, 16, 2);
        let want = sssp_dijkstra(&g, &w, 0);
        for threads in [1, 2, 4] {
            assert_eq!(sssp_parallel(&g, &w, 0, threads), want, "x{threads}");
        }
    }

    #[test]
    fn grid_distances() {
        let g = grid2d(20, 20);
        let w = vec![1u32; g.num_edges() as usize];
        let d = sssp_bellman_ford(&g, &w, 0);
        assert_eq!(d[399], 38); // Manhattan distance to far corner
        assert_eq!(sssp_parallel_default(&g, &w, 0), d);
    }

    #[test]
    fn unreachable_stays_inf() {
        let g = maxwarp_graph::Csr::from_edges(3, &[(0, 1)]);
        let d = sssp_bellman_ford(&g, &[5], 0);
        assert_eq!(d, vec![0, 5, INF]);
    }
}
