//! CPU connected-components baselines: sequential union-find (the
//! reference) lives in `maxwarp-graph`; here is the iterative
//! label-propagation algorithm the GPU kernels mirror, sequential and
//! parallel.

use crate::measure::default_threads;
use maxwarp_graph::Csr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Label propagation to a fixpoint: every vertex repeatedly takes the
/// minimum label over itself and its neighbors (edges treated as
/// undirected by propagating both ways). Labels end up as each component's
/// minimum vertex id — identical to the union-find reference.
pub fn cc_label_propagation(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label: Vec<u32> = (0..n).collect();
    loop {
        let mut changed = false;
        for u in 0..n {
            for &v in g.neighbors(u) {
                let (lu, lv) = (label[u as usize], label[v as usize]);
                if lu < lv {
                    label[v as usize] = lu;
                    changed = true;
                } else if lv < lu {
                    label[u as usize] = lv;
                    changed = true;
                }
            }
        }
        // Pointer-jump so labels converge to component minima quickly.
        for u in 0..n as usize {
            while label[u] != label[label[u] as usize] {
                label[u] = label[label[u] as usize];
            }
        }
        if !changed {
            return label;
        }
    }
}

/// Parallel label propagation with atomic min updates.
pub fn cc_parallel(g: &Csr, threads: usize) -> Vec<u32> {
    let threads = threads.max(1);
    let n = g.num_vertices() as usize;
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();

    fn atomic_min(a: &AtomicU32, v: u32) -> bool {
        let mut cur = a.load(Ordering::Relaxed);
        while v < cur {
            match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
        false
    }

    loop {
        let changed = AtomicBool::new(false);
        let cursor = AtomicUsize::new(0);
        let chunk = (n / (threads * 8)).max(256);
        let scope_result = crossbeam::scope(|scope| {
            for _ in 0..threads {
                let label = &label;
                let changed = &changed;
                let cursor = &cursor;
                scope.spawn(move |_| loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for u in start..end {
                        let lu = label[u].load(Ordering::Relaxed);
                        for &v in g.neighbors(u as u32) {
                            let lv = label[v as usize].load(Ordering::Relaxed);
                            let m = lu.min(lv);
                            if atomic_min(&label[v as usize], m) | atomic_min(&label[u], m) {
                                changed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        if scope_result.is_err() {
            panic!("cc scope panicked");
        }
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }

    // Sequential pointer-jump to canonical minima.
    let mut out: Vec<u32> = label.into_iter().map(|a| a.into_inner()).collect();
    for u in 0..n {
        while out[u] != out[out[u] as usize] {
            out[u] = out[out[u] as usize];
        }
    }
    out
}

/// [`cc_parallel`] with the default worker count.
pub fn cc_parallel_default(g: &Csr) -> Vec<u32> {
    cc_parallel(g, default_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::reference::{connected_components, count_distinct};
    use maxwarp_graph::{erdos_renyi, grid2d};

    #[test]
    fn matches_union_find_on_er() {
        let g = erdos_renyi(1000, 3000, 4);
        let want = connected_components(&g);
        assert_eq!(cc_label_propagation(&g), want);
        for threads in [1, 2, 4] {
            assert_eq!(cc_parallel(&g, threads), want, "x{threads}");
        }
    }

    #[test]
    fn grid_is_one_component() {
        let g = grid2d(30, 30);
        let cc = cc_label_propagation(&g);
        assert!(cc.iter().all(|&c| c == 0));
        assert_eq!(count_distinct(&cc_parallel_default(&g)), 1);
    }

    #[test]
    fn disconnected_parts() {
        let g = maxwarp_graph::Csr::from_edges(6, &[(0, 1), (2, 3)]);
        let cc = cc_label_propagation(&g);
        assert_eq!(cc, vec![0, 0, 2, 2, 4, 5]);
        assert_eq!(cc_parallel(&g, 2), cc);
    }
}
