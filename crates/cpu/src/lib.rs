//! # maxwarp-cpu — multicore CPU baselines
//!
//! Wall-clock-measured CPU implementations of the graph algorithms, used
//! for the paper's GPU-vs-CPU comparison (figure F5 in DESIGN.md):
//! sequential queue BFS, level-synchronous parallel BFS, Bellman-Ford SSSP,
//! label-propagation connected components, and PageRank — each with a
//! parallel variant built on crossbeam scoped threads.
//!
//! ```
//! use maxwarp_cpu::{bfs, measure};
//! use maxwarp_graph::{Dataset, Scale};
//!
//! let g = Dataset::Random.build(Scale::Tiny);
//! let (levels, elapsed) = measure::time_once(|| bfs::bfs_parallel(&g, 0, 2));
//! assert_eq!(levels[0], 0);
//! let _eps = measure::edges_per_second(g.num_edges(), elapsed);
//! ```

pub mod bfs;
pub mod bfs_hybrid;
pub mod cc;
pub mod fallback;
pub mod measure;
pub mod pagerank;
pub mod sssp;

pub use bfs::{bfs_parallel, bfs_parallel_default, bfs_sequential};
pub use bfs_hybrid::{bfs_hybrid, bfs_hybrid_symmetric, HybridConfig, HybridStats};
pub use cc::{cc_label_propagation, cc_parallel, cc_parallel_default};
pub use fallback::{
    run as fallback_run, supported as fallback_supported, FallbackData, FallbackParams,
};
pub use measure::{default_threads, edges_per_second, time_median, time_once};
pub use pagerank::{pagerank_parallel, pagerank_parallel_default, pagerank_push, rank_linf};
pub use sssp::{sssp_bellman_ford, sssp_parallel, sssp_parallel_default};
