//! CPU BFS baselines: an optimized sequential queue BFS and a
//! level-synchronous multicore BFS — the comparison points for the paper's
//! "GPU vs CPU" figure (our F5).

use crate::measure::default_threads;
use maxwarp_graph::Csr;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Level of unreachable vertices.
pub const INF: u32 = u32::MAX;

/// Sequential frontier-queue BFS (the strongest single-thread baseline:
/// no atomics, cache-friendly current/next vectors).
pub fn bfs_sequential(g: &Csr, src: u32) -> Vec<u32> {
    assert!(src < g.num_vertices());
    let mut levels = vec![INF; g.num_vertices() as usize];
    levels[src as usize] = 0;
    let mut current = vec![src];
    let mut next = Vec::new();
    let mut level = 0u32;
    while !current.is_empty() {
        level += 1;
        for &u in &current {
            for &v in g.neighbors(u) {
                let slot = &mut levels[v as usize];
                if *slot == INF {
                    *slot = level;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut current, &mut next);
        next.clear();
    }
    levels
}

/// Level-synchronous parallel BFS over `threads` workers (crossbeam scoped
/// threads). Each level, the frontier is chunked; workers claim chunks from
/// an atomic cursor, expand them, and CAS vertex levels; per-worker next
/// -frontiers are concatenated at the level barrier. With `threads = 1`
/// this degrades gracefully to roughly the sequential algorithm plus
/// atomics.
pub fn bfs_parallel(g: &Csr, src: u32, threads: usize) -> Vec<u32> {
    assert!(src < g.num_vertices());
    let threads = threads.max(1);
    let n = g.num_vertices() as usize;
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    levels[src as usize].store(0, Ordering::Relaxed);

    let mut frontier = vec![src];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let cursor = AtomicUsize::new(0);
        let chunk = (frontier.len() / (threads * 8)).max(64);
        let mut next_parts: Vec<Vec<u32>> = Vec::with_capacity(threads);

        let scope_result = crossbeam::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let frontier = &frontier;
                let levels = &levels;
                let cursor = &cursor;
                handles.push(scope.spawn(move |_| {
                    let mut local_next = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= frontier.len() {
                            break;
                        }
                        let end = (start + chunk).min(frontier.len());
                        for &u in &frontier[start..end] {
                            for &v in g.neighbors(u) {
                                if levels[v as usize].load(Ordering::Relaxed) == INF
                                    && levels[v as usize]
                                        .compare_exchange(
                                            INF,
                                            level,
                                            Ordering::Relaxed,
                                            Ordering::Relaxed,
                                        )
                                        .is_ok()
                                {
                                    local_next.push(v);
                                }
                            }
                        }
                    }
                    local_next
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(p) => next_parts.push(p),
                    Err(_) => panic!("bfs worker panicked"),
                }
            }
        });
        if scope_result.is_err() {
            panic!("bfs scope panicked");
        }

        frontier.clear();
        for mut p in next_parts {
            frontier.append(&mut p);
        }
    }

    levels.into_iter().map(|a| a.into_inner()).collect()
}

/// [`bfs_parallel`] with the default worker count.
pub fn bfs_parallel_default(g: &Csr, src: u32) -> Vec<u32> {
    bfs_parallel(g, src, default_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::reference::bfs_levels;
    use maxwarp_graph::{erdos_renyi, grid2d, hub_graph, rmat, RmatConfig};

    fn check_matches_reference(g: &Csr, src: u32) {
        let want = bfs_levels(g, src);
        assert_eq!(bfs_sequential(g, src), want, "sequential");
        for threads in [1, 2, 4] {
            assert_eq!(bfs_parallel(g, src, threads), want, "parallel x{threads}");
        }
    }

    #[test]
    fn matches_reference_on_er() {
        let g = erdos_renyi(2000, 16_000, 3);
        check_matches_reference(&g, 0);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat(&RmatConfig::classic(11, 8, 5));
        let src = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
        check_matches_reference(&g, src);
    }

    #[test]
    fn matches_reference_on_grid() {
        let g = grid2d(40, 40);
        check_matches_reference(&g, 0);
    }

    #[test]
    fn matches_reference_on_hub() {
        let g = hub_graph(3000, 6, 600, 3, 2);
        let src = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
        check_matches_reference(&g, src);
    }

    #[test]
    fn isolated_source() {
        let g = Csr::from_edges(4, &[(1, 2)]);
        let lv = bfs_sequential(&g, 0);
        assert_eq!(lv, vec![0, INF, INF, INF]);
        assert_eq!(bfs_parallel(&g, 0, 2), lv);
    }

    #[test]
    fn default_wrapper_works() {
        let g = erdos_renyi(500, 4000, 1);
        assert_eq!(bfs_parallel_default(&g, 0), bfs_sequential(&g, 0));
    }
}
