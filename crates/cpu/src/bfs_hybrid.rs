//! Direction-optimizing (hybrid) BFS — the extension the paper's authors
//! published next (Hong, Oguntebi, Olukotun, PACT 2011; Beamer et al.'s
//! formulation of the switch heuristic).
//!
//! Top-down steps expand the frontier; bottom-up steps instead scan
//! *unvisited* vertices for any parent in the frontier — dramatically
//! cheaper when the frontier covers much of the graph (1-2 middle levels
//! of a small-world graph). The driver switches direction with the
//! classic α/β heuristic.

use maxwarp_graph::Csr;

/// Level of unreachable vertices.
pub const INF: u32 = u32::MAX;

/// Tuning knobs of the direction switch.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Switch top-down → bottom-up when the frontier's out-edge count
    /// exceeds `remaining_edges / alpha`.
    pub alpha: u32,
    /// Switch bottom-up → top-down when the frontier shrinks below
    /// `n / beta`.
    pub beta: u32,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            alpha: 14,
            beta: 24,
        }
    }
}

/// Statistics of a hybrid run (which directions the levels used).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HybridStats {
    pub top_down_levels: u32,
    pub bottom_up_levels: u32,
}

/// Direction-optimizing BFS. `rev` must be the transpose of `g` (pass `g`
/// itself for symmetric graphs); bottom-up steps scan `rev` to find
/// parents.
pub fn bfs_hybrid(g: &Csr, rev: &Csr, src: u32, cfg: &HybridConfig) -> (Vec<u32>, HybridStats) {
    assert_eq!(
        g.num_vertices(),
        rev.num_vertices(),
        "reverse graph must match"
    );
    assert!(src < g.num_vertices());
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut levels = vec![INF; n as usize];
    levels[src as usize] = 0;
    let mut frontier: Vec<u32> = vec![src];
    let mut stats = HybridStats::default();
    let mut level = 0u32;
    let mut scanned_edges: u64 = 0;

    while !frontier.is_empty() {
        // Heuristic inputs: out-edges hanging off the frontier vs edges
        // left to scan.
        let frontier_edges: u64 = frontier.iter().map(|&v| g.degree(v) as u64).sum();
        let remaining = m.saturating_sub(scanned_edges);
        let bottom_up = frontier_edges > remaining / cfg.alpha as u64
            && frontier.len() as u64 > (n as u64) / cfg.beta as u64;

        level += 1;
        let mut next = Vec::new();
        if bottom_up {
            stats.bottom_up_levels += 1;
            for v in 0..n {
                if levels[v as usize] != INF {
                    continue;
                }
                // Any in-neighbor on the current level adopts us.
                for &u in rev.neighbors(v) {
                    if levels[u as usize] == level - 1 {
                        levels[v as usize] = level;
                        next.push(v);
                        break;
                    }
                }
            }
        } else {
            stats.top_down_levels += 1;
            for &u in &frontier {
                for &v in g.neighbors(u) {
                    let slot = &mut levels[v as usize];
                    if *slot == INF {
                        *slot = level;
                        next.push(v);
                    }
                }
            }
        }
        scanned_edges += frontier_edges;
        frontier = next;
    }
    (levels, stats)
}

/// Hybrid BFS on a symmetric graph (its own transpose).
pub fn bfs_hybrid_symmetric(g: &Csr, src: u32, cfg: &HybridConfig) -> (Vec<u32>, HybridStats) {
    bfs_hybrid(g, g, src, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::reference::bfs_levels;
    use maxwarp_graph::{erdos_renyi, grid2d, rmat, small_world, RmatConfig};

    #[test]
    fn matches_reference_on_directed_graphs() {
        for (name, g) in [
            ("er", erdos_renyi(2000, 16000, 3)),
            ("rmat", rmat(&RmatConfig::classic(11, 8, 5))),
        ] {
            let rev = g.reverse();
            for src in [0u32, 100] {
                let want = bfs_levels(&g, src);
                let (got, _) = bfs_hybrid(&g, &rev, src, &HybridConfig::default());
                assert_eq!(got, want, "{name} src={src}");
            }
        }
    }

    #[test]
    fn matches_reference_on_symmetric_graphs() {
        for (name, g) in [
            ("grid", grid2d(40, 40)),
            ("smallworld", small_world(2000, 4, 0.05, 7)),
        ] {
            let want = bfs_levels(&g, 0);
            let (got, _) = bfs_hybrid_symmetric(&g, 0, &HybridConfig::default());
            assert_eq!(got, want, "{name}");
        }
    }

    #[test]
    fn small_world_uses_bottom_up_in_the_middle() {
        // A small-world graph's middle levels cover most vertices: the
        // heuristic must fire.
        let g = small_world(4000, 6, 0.1, 1);
        let (_, stats) = bfs_hybrid_symmetric(&g, 0, &HybridConfig::default());
        assert!(stats.bottom_up_levels >= 1, "{stats:?}");
        assert!(stats.top_down_levels >= 1, "{stats:?}");
    }

    #[test]
    fn grid_stays_top_down() {
        // Thin mesh frontiers never justify bottom-up scans.
        let g = grid2d(50, 50);
        let (_, stats) = bfs_hybrid_symmetric(&g, 0, &HybridConfig::default());
        assert_eq!(stats.bottom_up_levels, 0, "{stats:?}");
    }

    #[test]
    fn forced_bottom_up_still_correct() {
        // Huge alpha/beta: the thresholds collapse to zero, forcing
        // bottom-up from the first level.
        let g = small_world(1000, 4, 0.2, 2);
        let cfg = HybridConfig {
            alpha: 1_000_000,
            beta: 1_000_000,
        };
        let (got, stats) = bfs_hybrid_symmetric(&g, 0, &cfg);
        assert_eq!(got, bfs_levels(&g, 0));
        assert!(stats.bottom_up_levels > 0);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = Csr::from_edges(10, &[(0, 1), (1, 0)]);
        let rev = g.reverse();
        let (got, _) = bfs_hybrid(&g, &rev, 0, &HybridConfig::default());
        assert_eq!(got[0], 0);
        assert_eq!(got[1], 1);
        assert!(got[2..].iter().all(|&l| l == INF));
    }
}
