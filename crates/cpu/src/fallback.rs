//! Circuit-breaker fallback entry point for the serve tier.
//!
//! When maxwarp-serve's per-`(graph, algorithm)` circuit breaker opens
//! (after K consecutive launch faults), requests are routed here: a
//! correct-but-slow CPU execution that keeps answers flowing while the
//! device path recovers. The interface is deliberately untyped on the
//! serve side — algorithms are named by their stable label (the same
//! strings `maxwarp_serve::Algo::label` produces) so this crate stays
//! independent of serve's request types.
//!
//! Only the algorithms with a CPU implementation in this crate are
//! covered; [`supported`] lets the breaker decide between degrading to
//! fallback and failing fast.

use crate::{bfs, cc, pagerank, sssp};
use maxwarp_graph::Csr;

/// Fallback output, by shape (mirrors the serve tier's payload shapes).
#[derive(Clone, Debug, PartialEq)]
pub enum FallbackData {
    /// BFS levels / SSSP distances / CC labels.
    U32s(Vec<u32>),
    /// PageRank ranks.
    F32s(Vec<f32>),
}

/// Parameters a fallback run may need; callers fill what the algorithm
/// uses and leave the rest at `Default`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FallbackParams {
    /// Source vertex (BFS family, SSSP).
    pub src: u32,
    /// Iteration count (PageRank).
    pub iters: u32,
    /// Damping factor (PageRank).
    pub damping: f32,
}

/// True if [`run`] can serve this algorithm label.
pub fn supported(algo: &str) -> bool {
    matches!(
        algo,
        "bfs" | "bfs_queue" | "bfs_hybrid" | "sssp" | "cc" | "pagerank"
    )
}

/// Execute the CPU fallback for `algo` on `g`. Returns `None` for
/// algorithms without a CPU implementation (the breaker then fails fast
/// instead of degrading).
///
/// Correctness contract: for the deterministic u32-valued algorithms
/// (BFS levels, Bellman-Ford distances, min-label components) the output
/// equals the device kernel's fixpoint exactly; PageRank matches within
/// float tolerance (the device accumulates in a different order).
pub fn run(algo: &str, g: &Csr, weights: &[u32], params: FallbackParams) -> Option<FallbackData> {
    match algo {
        // All three BFS variants answer the same question — levels from
        // `src` — so one sequential queue BFS covers them.
        "bfs" | "bfs_queue" | "bfs_hybrid" => {
            Some(FallbackData::U32s(bfs::bfs_sequential(g, params.src)))
        }
        "sssp" => Some(FallbackData::U32s(sssp::sssp_bellman_ford(
            g, weights, params.src,
        ))),
        "cc" => Some(FallbackData::U32s(cc::cc_label_propagation(g))),
        "pagerank" => Some(FallbackData::F32s(pagerank::pagerank_push(
            g,
            params.iters,
            params.damping,
        ))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::{hub_graph, random_weights, reference};

    #[test]
    fn supported_matches_run_coverage() {
        let g = hub_graph(50, 1, 10, 2, 3);
        let w = random_weights(&g, 15, 7);
        for algo in [
            "bfs",
            "bfs_queue",
            "bfs_hybrid",
            "sssp",
            "cc",
            "pagerank",
            "triangles",
            "spmv",
            "nope",
        ] {
            let params = FallbackParams {
                src: 0,
                iters: 3,
                damping: 0.85,
            };
            assert_eq!(
                supported(algo),
                run(algo, &g, &w, params).is_some(),
                "{algo}"
            );
        }
    }

    #[test]
    fn bfs_fallback_matches_reference() {
        let g = hub_graph(200, 2, 40, 3, 11);
        let params = FallbackParams {
            src: 1,
            ..Default::default()
        };
        let Some(FallbackData::U32s(levels)) = run("bfs", &g, &[], params) else {
            panic!("bfs fallback missing");
        };
        assert_eq!(levels, reference::bfs_levels(&g, 1));
    }

    #[test]
    fn cc_labels_are_min_label_fixpoint() {
        let g = hub_graph(120, 2, 30, 2, 5);
        let Some(FallbackData::U32s(labels)) = run("cc", &g, &[], FallbackParams::default()) else {
            panic!("cc fallback missing");
        };
        // Same partition as the reference: label equality patterns match.
        let want = reference::connected_components(&g);
        for i in 0..labels.len() {
            for j in (i + 1)..labels.len() {
                assert_eq!(
                    labels[i] == labels[j],
                    want[i] == want[j],
                    "vertices {i},{j} disagree on connectivity"
                );
            }
        }
    }
}
