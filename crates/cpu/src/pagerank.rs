//! CPU PageRank baselines: sequential push-style iteration (mirroring the
//! GPU kernels' structure) and a parallel version with per-thread
//! accumulation.

use crate::measure::default_threads;
use maxwarp_graph::Csr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// `iters` synchronous push iterations with damping `d` and uniform
/// dangling redistribution. `f32` to match the device arithmetic.
pub fn pagerank_push(g: &Csr, iters: u32, d: f32) -> Vec<f32> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0f32 / n as f32; n];
    let mut next = vec![0.0f32; n];
    for _ in 0..iters {
        let mut dangling = 0.0f32;
        next.fill(0.0);
        for u in 0..n as u32 {
            let deg = g.degree(u);
            if deg == 0 {
                dangling += rank[u as usize];
            } else {
                let share = rank[u as usize] / deg as f32;
                for &v in g.neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        let base = (1.0 - d) / n as f32 + d * dangling / n as f32;
        for r in next.iter_mut() {
            *r = base + d * *r;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Parallel pull-style PageRank: workers own disjoint destination ranges
/// over the *reverse* graph, so no atomics are needed on the accumulators.
pub fn pagerank_parallel(g: &Csr, iters: u32, d: f32, threads: usize) -> Vec<f32> {
    let threads = threads.max(1);
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let rev = g.reverse();
    let out_deg: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mut rank = vec![1.0f32 / n as f32; n];
    let mut next = vec![0.0f32; n];
    for _ in 0..iters {
        let dangling: f32 = (0..n).filter(|&u| out_deg[u] == 0).map(|u| rank[u]).sum();
        let base = (1.0 - d) / n as f32 + d * dangling / n as f32;
        let cursor = AtomicUsize::new(0);
        let chunk = (n / (threads * 8)).max(256);
        let rank_ref = &rank;
        let next_chunks = crossbeam::scope(|scope| -> Vec<(usize, Vec<f32>)> {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let rev = &rev;
                let out_deg = &out_deg;
                let cursor = &cursor;
                handles.push(scope.spawn(move |_| {
                    let mut parts = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        let mut local = vec![0.0f32; end - start];
                        for v in start..end {
                            let mut acc = 0.0f32;
                            for &u in rev.neighbors(v as u32) {
                                acc += rank_ref[u as usize] / out_deg[u as usize] as f32;
                            }
                            local[v - start] = base + d * acc;
                        }
                        parts.push((start, local));
                    }
                    parts
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(parts) => parts,
                    Err(_) => panic!("pagerank worker panicked"),
                })
                .collect()
        });
        let next_chunks = match next_chunks {
            Ok(v) => v,
            Err(_) => panic!("pagerank scope panicked"),
        };
        for (start, local) in next_chunks {
            next[start..start + local.len()].copy_from_slice(&local);
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// [`pagerank_parallel`] with the default worker count.
pub fn pagerank_parallel_default(g: &Csr, iters: u32, d: f32) -> Vec<f32> {
    pagerank_parallel(g, iters, d, default_threads())
}

/// Max absolute difference between two rank vectors.
pub fn rank_linf(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::erdos_renyi;
    use maxwarp_graph::reference::pagerank as pagerank_ref;

    #[test]
    fn push_matches_f64_reference() {
        let g = erdos_renyi(400, 3200, 3);
        let ours = pagerank_push(&g, 20, 0.85);
        let want = pagerank_ref(&g, 20, 0.85);
        for v in 0..400 {
            assert!(
                (ours[v] as f64 - want[v]).abs() < 1e-4,
                "v={v}: {} vs {}",
                ours[v],
                want[v]
            );
        }
    }

    #[test]
    fn parallel_matches_push() {
        let g = erdos_renyi(400, 3200, 5);
        let a = pagerank_push(&g, 15, 0.85);
        for threads in [1, 2, 4] {
            let b = pagerank_parallel(&g, 15, 0.85, threads);
            assert!(
                rank_linf(&a, &b) < 1e-5,
                "x{threads}: {}",
                rank_linf(&a, &b)
            );
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = erdos_renyi(300, 900, 1);
        let pr = pagerank_parallel_default(&g, 10, 0.85);
        let sum: f32 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum={sum}");
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(0);
        assert!(pagerank_push(&g, 5, 0.85).is_empty());
        assert!(pagerank_parallel(&g, 5, 0.85, 2).is_empty());
    }
}
