//! Wall-clock measurement helpers for the CPU baselines.

use std::time::{Duration, Instant};

/// Run `f` once and return its result with the elapsed wall-clock time.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Run `f` `reps` times (at least once) and return the last result with the
/// *median* elapsed time — robust to scheduler noise.
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let (r, d) = time_once(&mut f);
        times.push(d);
        out = Some(r);
    }
    times.sort_unstable();
    let Some(r) = out else {
        unreachable!("reps >= 1, the loop body ran at least once");
    };
    (r, times[times.len() / 2])
}

/// Throughput in edges traversed per second.
pub fn edges_per_second(edges: u64, d: Duration) -> f64 {
    if d.is_zero() {
        return f64::INFINITY;
    }
    edges as f64 / d.as_secs_f64()
}

/// Number of worker threads to use: respects `MAXWARP_CPU_THREADS`,
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("MAXWARP_CPU_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result() {
        let (r, d) = time_once(|| 41 + 1);
        assert_eq!(r, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn time_median_runs_all_reps() {
        let mut count = 0;
        let (_, _) = time_median(5, || count += 1);
        assert_eq!(count, 5);
        let mut c2 = 0;
        let (_, _) = time_median(0, || c2 += 1);
        assert_eq!(c2, 1, "at least one rep");
    }

    #[test]
    fn edges_per_second_math() {
        let eps = edges_per_second(1000, Duration::from_millis(500));
        assert!((eps - 2000.0).abs() < 1e-6);
        assert!(edges_per_second(1, Duration::ZERO).is_infinite());
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
