//! Host-side cost of simulating the BFS kernels (how fast the simulator
//! replays the paper's workloads). One measurement per method family.

use criterion::{criterion_group, criterion_main, Criterion};
use maxwarp::{run_bfs, DeviceGraph, ExecConfig, Method, VirtualWarp, WarpCentricOpts};
use maxwarp_graph::{Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn bench_bfs_methods(c: &mut Criterion) {
    let mut grp = c.benchmark_group("bfs_simulation");
    grp.sample_size(10);
    let g = Dataset::Rmat.build(Scale::Tiny);
    let src = Dataset::Rmat.source(&g);
    let exec = ExecConfig::default();
    let methods = [
        Method::Baseline,
        Method::warp(8),
        Method::warp(32),
        Method::WarpCentric(
            WarpCentricOpts::plain(VirtualWarp::new(8))
                .with_dynamic()
                .with_defer(64),
        ),
    ];
    for m in methods {
        grp.bench_function(m.label(), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
                let dg = DeviceGraph::upload(&mut gpu, &g);
                run_bfs(&mut gpu, &dg, src, m, &exec).unwrap().run.cycles()
            })
        });
    }
    grp.finish();
}

fn bench_bfs_datasets(c: &mut Criterion) {
    let mut grp = c.benchmark_group("bfs_by_dataset");
    grp.sample_size(10);
    let exec = ExecConfig::default();
    for d in [Dataset::Random, Dataset::WikiTalkLike, Dataset::RoadNet] {
        let g = d.build(Scale::Tiny);
        let src = d.source(&g);
        grp.bench_function(d.name(), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
                let dg = DeviceGraph::upload(&mut gpu, &g);
                run_bfs(&mut gpu, &dg, src, Method::warp(8), &exec)
                    .unwrap()
                    .run
                    .cycles()
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_bfs_methods, bench_bfs_datasets);
criterion_main!(benches);
