//! Host-side performance of the SIMT simulator itself: coalescing
//! analysis, the timing engine, and end-to-end kernel launches.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use maxwarp_simt::{
    coalesce, timing, BlockCtx, Gpu, GpuConfig, Lanes, Mask, Op, TimingInput, WarpTrace,
};

fn bench_coalesce(c: &mut Criterion) {
    let mut g = c.benchmark_group("coalesce");
    let seq: Vec<u64> = (0..32u64).map(|i| 4096 + i * 4).collect();
    let scat: Vec<u64> = (0..32u64).map(|i| i * 4096).collect();
    g.bench_function("sequential_addresses", |b| {
        b.iter(|| coalesce::transactions(std::hint::black_box(&seq).iter().copied(), 128))
    });
    g.bench_function("scattered_addresses", |b| {
        b.iter(|| coalesce::transactions(std::hint::black_box(&scat).iter().copied(), 128))
    });
    g.finish();
}

fn bench_timing_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing_engine");
    g.sample_size(20);
    let cfg = GpuConfig::fermi_c2050();
    // 256 warps x 1000 mixed ops.
    let trace = WarpTrace {
        ops: (0..1000)
            .map(|i| {
                if i % 5 == 0 {
                    Op::LdGlobal { active: 32, tx: 4 }
                } else {
                    Op::Alu { active: 32 }
                }
            })
            .collect(),
    };
    g.bench_function("256_warps_x_1000_ops", |b| {
        b.iter_batched(
            || TimingInput {
                blocks: (0..32)
                    .map(|_| (0..8).map(|_| vec![&trace]).collect())
                    .collect(),
                block_threads: 256,
                shared_words_per_block: 0,
                queue: Vec::new(),
            },
            |input| timing::simulate(&input, &cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_kernel_launch(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_launch");
    g.sample_size(20);
    let n = 100_000u32;
    g.bench_function("map_kernel_100k", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
            let x = gpu.mem.alloc::<u32>(n);
            let kernel = move |blk: &mut BlockCtx<'_>| {
                blk.phase(|w| {
                    let tid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &tid, n);
                    let v = w.ld(m, x, &tid);
                    let r = w.alu2(m, &v, &Lanes::splat(3u32), |a, b| a * b + 1);
                    w.st(m, x, &tid, &r);
                });
            };
            gpu.launch(n.div_ceil(256), 256, &kernel).unwrap().cycles
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_coalesce,
    bench_timing_engine,
    bench_kernel_launch
);
criterion_main!(benches);
