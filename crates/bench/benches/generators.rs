//! Host-side performance of the graph generators and IO.

use criterion::{criterion_group, criterion_main, Criterion};
use maxwarp_graph::{decode_csr, encode_csr, erdos_renyi, grid2d, rmat, small_world, RmatConfig};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    g.bench_function("rmat_scale14_ef8", |b| {
        b.iter(|| rmat(&RmatConfig::classic(14, 8, 7)))
    });
    g.bench_function("erdos_renyi_16k_128k", |b| {
        b.iter(|| erdos_renyi(16_384, 131_072, 7))
    });
    g.bench_function("grid_128x128", |b| b.iter(|| grid2d(128, 128)));
    g.bench_function("small_world_16k", |b| {
        b.iter(|| small_world(16_384, 4, 0.05, 7))
    });
    g.finish();
}

fn bench_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("io");
    g.sample_size(20);
    let graph = erdos_renyi(16_384, 131_072, 3);
    g.bench_function("encode_csr_128k_edges", |b| b.iter(|| encode_csr(&graph)));
    let bytes = encode_csr(&graph);
    g.bench_function("decode_csr_128k_edges", |b| {
        b.iter(|| decode_csr(&bytes).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_generators, bench_io);
criterion_main!(benches);
