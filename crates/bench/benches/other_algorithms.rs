//! Host-side cost of simulating SSSP, connected components, and PageRank
//! (the F6 workloads).

use criterion::{criterion_group, criterion_main, Criterion};
use maxwarp::{run_cc, run_pagerank, run_sssp, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{random_weights, Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn bench_algorithms(c: &mut Criterion) {
    let mut grp = c.benchmark_group("other_algorithms_simulation");
    grp.sample_size(10);
    let d = Dataset::Random;
    let g = d.build(Scale::Tiny);
    let w = random_weights(&g, 16, 1);
    let src = d.source(&g);
    let gs = g.symmetrize();
    let exec = ExecConfig::default();
    for m in [Method::Baseline, Method::warp(8)] {
        grp.bench_function(format!("sssp_{}", m.label()), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
                let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &w);
                run_sssp(&mut gpu, &dg, src, m, &exec).unwrap().run.cycles()
            })
        });
        grp.bench_function(format!("cc_{}", m.label()), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
                let dg = DeviceGraph::upload(&mut gpu, &gs);
                run_cc(&mut gpu, &dg, m, &exec).unwrap().run.cycles()
            })
        });
        grp.bench_function(format!("pagerank10_{}", m.label()), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
                let dg = DeviceGraph::upload(&mut gpu, &g);
                run_pagerank(&mut gpu, &dg, 10, 0.85, m, &exec)
                    .unwrap()
                    .run
                    .cycles()
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
