//! Wall-clock performance of the CPU baselines (the F5 comparison points).

use criterion::{criterion_group, criterion_main, Criterion};
use maxwarp_cpu::{
    bfs_hybrid_symmetric, bfs_parallel, bfs_sequential, sssp_bellman_ford, HybridConfig,
};
use maxwarp_graph::{random_weights, Dataset, Scale};

fn bench_cpu_bfs(c: &mut Criterion) {
    let mut grp = c.benchmark_group("cpu_bfs");
    grp.sample_size(20);
    let g = Dataset::Rmat.build(Scale::Small);
    let src = Dataset::Rmat.source(&g);
    grp.bench_function("sequential", |b| b.iter(|| bfs_sequential(&g, src)));
    for threads in [1usize, 2, 4] {
        grp.bench_function(format!("parallel_x{threads}"), |b| {
            b.iter(|| bfs_parallel(&g, src, threads))
        });
    }
    grp.finish();
}

fn bench_cpu_hybrid_bfs(c: &mut Criterion) {
    let mut grp = c.benchmark_group("cpu_hybrid_bfs");
    grp.sample_size(20);
    let g = Dataset::SmallWorld.build(Scale::Small);
    let src = Dataset::SmallWorld.source(&g);
    grp.bench_function("top_down_only", |b| b.iter(|| bfs_sequential(&g, src)));
    grp.bench_function("direction_optimizing", |b| {
        b.iter(|| bfs_hybrid_symmetric(&g, src, &HybridConfig::default()))
    });
    grp.finish();
}

fn bench_cpu_sssp(c: &mut Criterion) {
    let mut grp = c.benchmark_group("cpu_sssp");
    grp.sample_size(10);
    let g = Dataset::Random.build(Scale::Small);
    let w = random_weights(&g, 16, 5);
    let src = Dataset::Random.source(&g);
    grp.bench_function("bellman_ford", |b| {
        b.iter(|| sssp_bellman_ford(&g, &w, src))
    });
    grp.finish();
}

criterion_group!(benches, bench_cpu_bfs, bench_cpu_hybrid_bfs, bench_cpu_sssp);
criterion_main!(benches);
