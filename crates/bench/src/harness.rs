//! The parallel experiment harness.
//!
//! Experiments declare their measurements as a flat list of [`Cell`]s —
//! one independent unit of work each, typically one (dataset, method,
//! config) point owning its own `Gpu` and `DeviceGraph` — and hand them to
//! [`Harness::run`], which fans the cells out over worker threads and
//! returns the results **in input order**. Because every cell is
//! hermetic (fresh device, no shared mutable state) and all table
//! printing happens after collection, the stdout of every experiment is
//! byte-identical whatever the worker count: `--jobs 1` reproduces
//! today's serial output exactly, and `--jobs N` merely reproduces it
//! faster.
//!
//! Per-cell progress and timing go to **stderr** so they never perturb
//! the tables.
//!
//! Cells are **panic-isolated**: a cell that panics is retried once (host
//! failures like allocation pressure are transient; deterministic panics
//! just fail again cheaply), then reported to stderr and returned as
//! `None` in its input-order slot. The other cells' results survive, and
//! [`exit_code`] turns nonzero so batch drivers still fail loudly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Set when any cell in this process failed both attempts.
static FAILED: AtomicBool = AtomicBool::new(false);

/// Process exit code for experiment binaries: 1 if any harness cell
/// failed (after its retry) since the process started, else 0.
pub fn exit_code() -> i32 {
    if FAILED.load(Ordering::Relaxed) {
        1
    } else {
        0
    }
}

/// One independent unit of experiment work: a label (for progress
/// reporting) and a closure producing the cell's measurement. The closure
/// may borrow graphs and configs from the caller's stack (`'a`); it is
/// `FnMut` so the harness can re-invoke it once after a panic.
pub struct Cell<'a, T> {
    label: String,
    run: Box<dyn FnMut() -> T + Send + 'a>,
}

impl<'a, T> Cell<'a, T> {
    /// A cell computing `run()`, reported as `label` in progress output.
    pub fn new(label: impl Into<String>, run: impl FnMut() -> T + Send + 'a) -> Self {
        Cell {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The cell's progress label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one cell with panic isolation and a single retry. `None` = the
/// cell failed both attempts (already reported to stderr).
fn run_cell<T>(what: &str, label: &str, run: &mut Box<dyn FnMut() -> T + Send + '_>) -> Option<T> {
    for attempt in 0..2 {
        match catch_unwind(AssertUnwindSafe(&mut *run)) {
            Ok(v) => return Some(v),
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                let msg = msg.lines().next().unwrap_or("");
                if attempt == 0 {
                    eprintln!("[{what}] {label}: FAILED ({msg}); retrying once");
                } else {
                    eprintln!("[{what}] {label}: FAILED twice ({msg}); dropping cell");
                    FAILED.store(true, Ordering::Relaxed);
                }
            }
        }
    }
    None
}

/// Runs cell lists across a fixed number of worker threads.
#[derive(Clone, Copy, Debug)]
pub struct Harness {
    jobs: usize,
}

impl Harness {
    /// Worker count from the environment: `--jobs N` (or `--jobs=N`) on
    /// the command line, else `MAXWARP_JOBS`, else the machine's available
    /// parallelism.
    pub fn from_env() -> Self {
        Harness::with_jobs(jobs_from_env())
    }

    /// Fixed worker count (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Harness { jobs: jobs.max(1) }
    }

    /// The worker count this harness fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Execute every cell and return their results in input order, `None`
    /// for cells that failed both attempts (see the module docs on panic
    /// isolation).
    ///
    /// With one job (or one cell) the cells run serially on the calling
    /// thread, in order — exactly the pre-harness behaviour. Otherwise
    /// `min(jobs, cells)` scoped workers pull cells from a shared index
    /// and the results are merged back into input order afterwards, so
    /// the returned `Vec` is identical either way.
    ///
    /// `what` names the experiment in progress lines (stderr):
    /// `[F2] 3/40 rmat vw8: 412 ms`.
    pub fn run<T: Send>(&self, what: &str, cells: Vec<Cell<'_, T>>) -> Vec<Option<T>> {
        let total = cells.len();
        if self.jobs == 1 || total <= 1 {
            return cells
                .into_iter()
                .enumerate()
                .map(|(i, mut cell)| {
                    let t0 = Instant::now();
                    let out = run_cell(what, &cell.label, &mut cell.run);
                    progress(what, i + 1, total, &cell.label, t0);
                    out
                })
                .collect();
        }

        let slots: Vec<Mutex<Option<Cell<'_, T>>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let workers = self.jobs.min(total);

        let per_worker = crossbeam::scope(|s| -> Vec<Vec<(usize, Option<T>)>> {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (slots, next, done) = (&slots, &next, &done);
                    s.spawn(move |_| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            let mut slot = match slots[i].lock() {
                                Ok(g) => g,
                                Err(_) => panic!("cell slot poisoned"),
                            };
                            let Some(mut cell) = slot.take() else {
                                panic!("cell taken twice");
                            };
                            drop(slot);
                            let t0 = Instant::now();
                            let v = run_cell(what, &cell.label, &mut cell.run);
                            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                            progress(what, n, total, &cell.label, t0);
                            out.push((i, v));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(_) => panic!("harness worker panicked"),
                })
                .collect()
        });
        let per_worker = match per_worker {
            Ok(v) => v,
            Err(_) => panic!("harness scope panicked"),
        };

        let mut merged: Vec<Option<T>> = (0..total).map(|_| None).collect();
        for chunk in per_worker {
            for (i, v) in chunk {
                merged[i] = v;
            }
        }
        merged
    }
}

/// Unwrap one table row's worth of per-cell results. Returns the row's
/// values if every cell succeeded; otherwise reports to stderr and returns
/// `None` so the printer can skip the row while the remaining rows stay
/// chunk-aligned (failed cells keep their slots in the flat result list).
pub fn row<'c, T>(what: &str, label: &str, chunk: &'c [Option<T>]) -> Option<Vec<&'c T>> {
    let vals: Vec<&T> = chunk.iter().flatten().collect();
    if vals.len() == chunk.len() {
        Some(vals)
    } else {
        eprintln!(
            "[{what}] {label}: skipping row — {} of {} cells failed",
            chunk.len() - vals.len(),
            chunk.len()
        );
        None
    }
}

fn progress(what: &str, n: usize, total: usize, label: &str, t0: Instant) {
    eprintln!(
        "[{what}] {n}/{total} {label}: {} ms",
        t0.elapsed().as_millis()
    );
}

/// Resolve the worker count: `--jobs N` / `--jobs=N` argument, then the
/// `MAXWARP_JOBS` variable, then available parallelism.
pub fn jobs_from_env() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let v = if a == "--jobs" {
            args.next()
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(n) = v.and_then(|v| v.parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    if let Some(n) = std::env::var("MAXWARP_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(h: &Harness, n: usize) -> Vec<Option<usize>> {
        let cells = (0..n)
            .map(|i| Cell::new(format!("cell{i}"), move || i * i))
            .collect();
        h.run("test", cells)
    }

    #[test]
    fn serial_and_parallel_agree_in_input_order() {
        let expect: Vec<Option<usize>> = (0..37).map(|i| Some(i * i)).collect();
        assert_eq!(squares(&Harness::with_jobs(1), 37), expect);
        assert_eq!(squares(&Harness::with_jobs(4), 37), expect);
        assert_eq!(
            squares(&Harness::with_jobs(64), 37),
            expect,
            "more jobs than cells"
        );
    }

    #[test]
    fn cells_borrow_the_callers_stack() {
        let data: Vec<u64> = (0..100).collect();
        let cells = data
            .chunks(7)
            .map(|c| Cell::new("chunk", move || c.iter().sum::<u64>()))
            .collect();
        let parts = Harness::with_jobs(3).run("borrow", cells);
        assert_eq!(
            parts.into_iter().flatten().sum::<u64>(),
            (0..100).sum::<u64>()
        );
    }

    #[test]
    fn single_job_runs_on_calling_thread() {
        let main_id = std::thread::current().id();
        let cells = vec![Cell::new("id", move || std::thread::current().id())];
        let ids = Harness::with_jobs(1).run("serial", cells);
        assert_eq!(ids[0], Some(main_id));
    }

    #[test]
    fn panicking_cell_yields_partial_results_and_failure_exit() {
        // One poisoned cell among nine: the harness must keep the other
        // results in their input-order slots, report the failure, and
        // flip the process exit code — without tearing down the workers.
        for jobs in [1usize, 4] {
            let cells: Vec<Cell<'_, usize>> = (0..9)
                .map(|i| {
                    Cell::new(format!("cell{i}"), move || {
                        assert!(i != 4, "deterministic failure in cell 4");
                        i * 10
                    })
                })
                .collect();
            let out = Harness::with_jobs(jobs).run("panic", cells);
            let expect: Vec<Option<usize>> = (0..9)
                .map(|i| if i == 4 { None } else { Some(i * 10) })
                .collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
        assert_eq!(exit_code(), 1, "a failed cell must fail the process");
    }

    #[test]
    fn transient_panic_is_retried_and_succeeds() {
        use std::sync::atomic::AtomicU32;
        let attempts = AtomicU32::new(0);
        let cells = vec![Cell::new("flaky", || {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient host failure");
            }
            7u32
        })];
        let out = Harness::with_jobs(1).run("retry", cells);
        assert_eq!(out, vec![Some(7)]);
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_cell_list_is_fine() {
        let out: Vec<Option<u32>> = Harness::with_jobs(8).run("none", Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(Harness::with_jobs(0).jobs(), 1);
    }

    #[test]
    fn heterogeneous_durations_still_merge_in_order() {
        // Reverse-staggered sleeps: late cells finish first under
        // parallelism, so a naive completion-order collection would
        // reverse the list.
        let cells: Vec<Cell<'_, usize>> = (0..8)
            .map(|i| {
                Cell::new(format!("sleep{i}"), move || {
                    std::thread::sleep(std::time::Duration::from_millis(8 * (8 - i) as u64));
                    i
                })
            })
            .collect();
        let out = Harness::with_jobs(8).run("stagger", cells);
        assert_eq!(out, (0..8).map(Some).collect::<Vec<_>>());
    }
}
