//! # maxwarp-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index), plus `repro_all`, which regenerates everything in one run:
//!
//! ```text
//! cargo run --release -p maxwarp-bench --bin repro_all [tiny|small|medium] [--jobs N]
//! ```
//!
//! Every experiment expresses its measurements as independent cells run
//! through [`harness::Harness`], so `--jobs N` fans them out over N
//! worker threads while keeping the printed tables byte-identical to a
//! serial (`--jobs 1`) run.
//!
//! Criterion benches (in `benches/`) measure the *host* performance of the
//! simulator and baselines; the figure binaries report *simulated* GPU
//! cycles.

pub mod bench_suite;
pub mod experiments;
pub mod harness;
pub mod util;
