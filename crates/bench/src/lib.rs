//! # maxwarp-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index), plus `repro_all`, which regenerates everything in one run:
//!
//! ```text
//! cargo run --release -p maxwarp-bench --bin repro_all [tiny|small|medium]
//! ```
//!
//! Criterion benches (in `benches/`) measure the *host* performance of the
//! simulator and baselines; the figure binaries report *simulated* GPU
//! cycles.

pub mod experiments;
pub mod util;
