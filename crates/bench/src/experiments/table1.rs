//! T1 — the dataset table: per-graph size and degree-distribution
//! statistics (the paper's graph-instances table).

use crate::harness::{Cell, Harness};
use crate::util::{banner, f};
use maxwarp_graph::{Dataset, DegreeStats, Scale};

/// Print the dataset table.
pub fn run(scale: Scale, h: &Harness) {
    banner("T1", "graph datasets and degree statistics", scale);
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7} {:>9}  class",
        "dataset", "|V|", "|E|", "avg-deg", "max-deg", "cv", "p99", "top1%edg"
    );
    let cells = Dataset::ALL
        .iter()
        .map(|&d| {
            Cell::new(d.name(), move || {
                let g = d.build(scale);
                let s = DegreeStats::of(&g);
                format!(
                    "{:<14} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7} {:>8.1}%  {}",
                    d.name(),
                    g.num_vertices(),
                    g.num_edges(),
                    f(s.mean),
                    s.max,
                    f(s.cv),
                    s.p99,
                    s.top1pct_edge_share * 100.0,
                    d.description(),
                )
            })
        })
        .collect();
    for row in h.run("T1", cells).into_iter().flatten() {
        println!("{row}");
    }
}
