//! T1 — the dataset table: per-graph size and degree-distribution
//! statistics (the paper's graph-instances table).

use crate::util::{banner, built_datasets, f};
use maxwarp_graph::{DegreeStats, Scale};

/// Print the dataset table.
pub fn run(scale: Scale) {
    banner("T1", "graph datasets and degree statistics", scale);
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7} {:>9}  class",
        "dataset", "|V|", "|E|", "avg-deg", "max-deg", "cv", "p99", "top1%edg"
    );
    for (d, g, _src) in built_datasets(scale) {
        let s = DegreeStats::of(&g);
        println!(
            "{:<14} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7} {:>8.1}%  {}",
            d.name(),
            g.num_vertices(),
            g.num_edges(),
            f(s.mean),
            s.max,
            f(s.cv),
            s.p99,
            s.top1pct_edge_share * 100.0,
            d.description(),
        );
    }
}
