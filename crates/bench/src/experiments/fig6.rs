//! F6 — beyond BFS: the warp-centric method applied to SSSP
//! (Bellman-Ford), connected components (label propagation), and PageRank.

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, f, fresh_gpu, launch_ok, upload_fresh};
use maxwarp::{run_cc, run_pagerank, run_sssp, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{random_weights, Csr, Dataset, Scale};
use maxwarp_simt::Gpu;

fn fresh(g: &Csr, weights: Option<&[u32]>) -> (Gpu, DeviceGraph) {
    match weights {
        Some(w) => {
            let mut gpu = fresh_gpu();
            let dg = DeviceGraph::upload_weighted(&mut gpu, g, w);
            (gpu, dg)
        }
        None => upload_fresh(g),
    }
}

fn methods() -> [(&'static str, Method); 3] {
    maxwarp::method_table::comparison_trio()
}

/// Print per-algorithm baseline vs warp-centric cycles and speedups.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "F6",
        "other algorithms: baseline vs warp-centric (best of K=8,32)",
        scale,
    );
    let exec = ExecConfig::default();
    println!(
        "{:<14} {:<9} {:>12} {:>12} {:>7} {:>9}",
        "dataset", "algo", "baseline-cyc", "warp-cyc", "best-K", "speedup"
    );

    // Build stage: graph plus the derived inputs each algorithm needs.
    // Round-synchronous relaxation (Bellman-Ford, label propagation) needs
    // O(diameter) full-graph rounds: on the ~1000-diameter mesh that is
    // pathological on real GPUs too, so the mesh is excluded from those
    // two workloads (BFS/A2 cover it).
    let build_cells = Dataset::ALL
        .iter()
        .map(|&d| {
            Cell::new(format!("build {}", d.name()), move || {
                let g = d.build(scale);
                let src = d.source(&g);
                let high_diameter = matches!(d, Dataset::RoadNet);
                let wts = (!high_diameter).then(|| random_weights(&g, 16, 0xBEEF));
                let gs = (!high_diameter).then(|| {
                    if g.is_symmetric() {
                        g.clone()
                    } else {
                        g.symmetrize()
                    }
                });
                (d, g, src, wts, gs)
            })
        })
        .collect();
    let built: Vec<_> = h
        .run("F6:build", build_cells)
        .into_iter()
        .flatten()
        .collect();

    // Run stage: one cell per (dataset, algorithm, method).
    let mut keys = Vec::new();
    let mut cells = Vec::new();
    for (d, g, src, wts, gs) in &built {
        let src = *src;
        if let Some(wts) = wts {
            for (label, m) in methods() {
                cells.push(Cell::new(format!("{} sssp {label}", d.name()), move || {
                    let (mut gpu, dg) = fresh(g, Some(wts));
                    launch_ok(run_sssp(&mut gpu, &dg, src, m, &exec))
                        .run
                        .cycles()
                }));
            }
            keys.push((d.name(), "sssp"));
        }
        if let Some(gs) = gs {
            for (label, m) in methods() {
                cells.push(Cell::new(format!("{} cc {label}", d.name()), move || {
                    let (mut gpu, dg) = fresh(gs, None);
                    launch_ok(run_cc(&mut gpu, &dg, m, &exec)).run.cycles()
                }));
            }
            keys.push((d.name(), "cc"));
        }
        for (label, m) in methods() {
            cells.push(Cell::new(
                format!("{} pagerank {label}", d.name()),
                move || {
                    let (mut gpu, dg) = fresh(g, None);
                    launch_ok(run_pagerank(&mut gpu, &dg, 10, 0.85, m, &exec))
                        .run
                        .cycles()
                },
            ));
        }
        keys.push((d.name(), "pagerank"));
    }
    let outs = h.run("F6", cells);

    for ((dataset, algo), chunk) in keys.iter().zip(outs.chunks(methods().len())) {
        let Some(chunk) = row("F6", &format!("{dataset} {algo}"), chunk) else {
            continue;
        };
        report(
            dataset,
            algo,
            &chunk.into_iter().copied().collect::<Vec<_>>(),
        );
    }
    println!(
        "(expected shape: same as BFS — warp-centric wins where degree variance is high, \
         with PageRank showing the largest memory-coalescing benefit)"
    );
}

/// `cycles` holds one entry per [`methods`] row: baseline, then K=8, 32.
fn report(dataset: &str, algo: &str, cycles: &[u64]) {
    let base = cycles[0];
    let mut best = (0u32, u64::MAX);
    for (k, &c) in [8u32, 32].iter().zip(&cycles[1..]) {
        if c < best.1 {
            best = (*k, c);
        }
    }
    println!(
        "{:<14} {:<9} {:>12} {:>12} {:>7} {:>8}x",
        dataset,
        algo,
        base,
        best.1,
        best.0,
        f(base as f64 / best.1 as f64)
    );
}
