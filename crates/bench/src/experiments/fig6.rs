//! F6 — beyond BFS: the warp-centric method applied to SSSP
//! (Bellman-Ford), connected components (label propagation), and PageRank.

use crate::util::{banner, built_datasets, device, f};
use maxwarp::{
    run_cc, run_pagerank, run_sssp, DeviceGraph, ExecConfig, Method,
};
use maxwarp_graph::{random_weights, Csr, Scale};
use maxwarp_simt::Gpu;

fn fresh(g: &Csr, weights: Option<&[u32]>) -> (Gpu, DeviceGraph) {
    let mut gpu = Gpu::new(device());
    let dg = match weights {
        Some(w) => DeviceGraph::upload_weighted(&mut gpu, g, w),
        None => DeviceGraph::upload(&mut gpu, g),
    };
    (gpu, dg)
}

/// Print per-algorithm baseline vs warp-centric cycles and speedups.
pub fn run(scale: Scale) {
    banner(
        "F6",
        "other algorithms: baseline vs warp-centric (best of K=8,32)",
        scale,
    );
    let exec = ExecConfig::default();
    println!(
        "{:<14} {:<9} {:>12} {:>12} {:>7} {:>9}",
        "dataset", "algo", "baseline-cyc", "warp-cyc", "best-K", "speedup"
    );
    for (d, g, src) in built_datasets(scale) {
        // Round-synchronous relaxation (Bellman-Ford, label propagation)
        // needs O(diameter) full-graph rounds: on the ~1000-diameter mesh
        // that is pathological on real GPUs too, so the mesh is excluded
        // from those two workloads (BFS/A2 cover it).
        let high_diameter = matches!(d, maxwarp_graph::Dataset::RoadNet);

        // --- SSSP ---
        if !high_diameter {
            let wts = random_weights(&g, 16, 0xBEEF);
            let sssp_cycles = |m: Method| {
                let (mut gpu, dg) = fresh(&g, Some(&wts));
                run_sssp(&mut gpu, &dg, src, m, &exec).unwrap().run.cycles()
            };
            report(d.name(), "sssp", sssp_cycles);
        }

        // --- CC (needs symmetric input for component semantics) ---
        if !high_diameter {
            let gs = if g.is_symmetric() { g.clone() } else { g.symmetrize() };
            let cc_cycles = |m: Method| {
                let (mut gpu, dg) = fresh(&gs, None);
                run_cc(&mut gpu, &dg, m, &exec).unwrap().run.cycles()
            };
            report(d.name(), "cc", cc_cycles);
        }

        // --- PageRank (10 iterations) ---
        let pr_cycles = |m: Method| {
            let (mut gpu, dg) = fresh(&g, None);
            run_pagerank(&mut gpu, &dg, 10, 0.85, m, &exec)
                .unwrap()
                .run
                .cycles()
        };
        report(d.name(), "pagerank", pr_cycles);
    }
    println!(
        "(expected shape: same as BFS — warp-centric wins where degree variance is high, \
         with PageRank showing the largest memory-coalescing benefit)"
    );
}

fn report(dataset: &str, algo: &str, cycles: impl Fn(Method) -> u64) {
    let base = cycles(Method::Baseline);
    let mut best = (0u32, u64::MAX);
    for k in [8u32, 32] {
        let c = cycles(Method::warp(k));
        if c < best.1 {
            best = (k, c);
        }
    }
    println!(
        "{:<14} {:<9} {:>12} {:>12} {:>7} {:>8}x",
        dataset,
        algo,
        base,
        best.1,
        best.0,
        f(base as f64 / best.1 as f64)
    );
}
