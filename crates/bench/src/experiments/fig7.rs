//! F7 — memory-coalescing ablation: global-memory transactions per memory
//! instruction and per traversed edge, baseline vs warp-centric.
//!
//! Isolates the second of the paper's two effects: the warp-centric SIMD
//! phase turns each adjacency list into consecutive per-lane addresses, so
//! the same traversal issues a fraction of the DRAM transactions.

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, bfs_fresh, built_datasets_par, f, reachable_edges};
use maxwarp::{ExecConfig, Method};
use maxwarp_graph::Scale;

/// Print transaction statistics; returns `(dataset, baseline_tx_per_edge,
/// warp_tx_per_edge)` rows.
pub fn run(scale: Scale, h: &Harness) -> Vec<(String, f64, f64)> {
    banner(
        "F7",
        "memory coalescing: DRAM transactions, baseline vs vw32",
        scale,
    );
    println!(
        "{:<14} {:>13} {:>13} {:>11} {:>11} {:>8}",
        "dataset", "base-tx/mem", "warp-tx/mem", "base-tx/edge", "warp-tx/edge", "ratio"
    );
    let exec = ExecConfig::default();
    let built = built_datasets_par(scale, h);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        cells.push(Cell::new(format!("{} baseline", d.name()), move || {
            bfs_fresh(g, src, Method::Baseline, &exec)
        }));
        cells.push(Cell::new(format!("{} vw32", d.name()), move || {
            bfs_fresh(g, src, Method::warp(32), &exec)
        }));
    }
    let outs = h.run("F7", cells);

    let mut rows = Vec::new();
    for ((d, g, _), chunk) in built.iter().zip(outs.chunks(2)) {
        let Some(chunk) = row("F7", d.name(), chunk) else {
            continue;
        };
        let (base, warp) = (chunk[0], chunk[1]);
        let edges = reachable_edges(g, &base.levels).max(1) as f64;
        let bt = base.run.stats.mem_transactions as f64 / edges;
        let wt = warp.run.stats.mem_transactions as f64 / edges;
        println!(
            "{:<14} {:>13} {:>13} {:>11} {:>11} {:>8}",
            d.name(),
            f(base.run.stats.tx_per_mem_instruction()),
            f(warp.run.stats.tx_per_mem_instruction()),
            f(bt),
            f(wt),
            f(bt / wt)
        );
        rows.push((d.name().to_string(), bt, wt));
    }
    println!(
        "(expected shape: baseline tx/mem approaches the active lane count on scattered \
         graphs; warp-centric stays near 1-4; the tx/edge ratio is the coalescing win)"
    );
    rows
}
