//! F3 — the virtual-warp-size sweep: execution time for K ∈ {1..32},
//! normalized to the baseline. This is the paper's imbalance-vs-ALU
//! -underutilization trade-off figure: the optimum K grows with degree
//! variance.

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, bfs_fresh, built_datasets_par};
use maxwarp::{ExecConfig, Method, VirtualWarp};
use maxwarp_graph::Scale;

/// Print normalized time per K; returns `(dataset, best_k)` pairs.
pub fn run(scale: Scale, h: &Harness) -> Vec<(String, u32)> {
    banner(
        "F3",
        "BFS time vs virtual warp size (normalized to baseline; <1 = faster)",
        scale,
    );
    print!("{:<14} {:>10}", "dataset", "baseline");
    for vw in VirtualWarp::ALL {
        print!(" {:>8}", vw.to_string());
    }
    println!(" {:>7}", "best-K");
    let exec = ExecConfig::default();
    let built = built_datasets_par(scale, h);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        cells.push(Cell::new(format!("{} baseline", d.name()), move || {
            bfs_fresh(g, src, Method::Baseline, &exec).run.cycles()
        }));
        for vw in VirtualWarp::ALL {
            cells.push(Cell::new(format!("{} {vw}", d.name()), move || {
                bfs_fresh(g, src, Method::warp(vw.k()), &exec).run.cycles()
            }));
        }
    }
    let outs = h.run("F3", cells);

    let stride = 1 + VirtualWarp::ALL.len();
    let mut bests = Vec::new();
    for ((d, _, _), chunk) in built.iter().zip(outs.chunks(stride)) {
        let Some(chunk) = row("F3", d.name(), chunk) else {
            continue;
        };
        let base = *chunk[0];
        print!("{:<14} {:>10}", d.name(), base);
        let mut best = (0u32, u64::MAX);
        for (vw, &&c) in VirtualWarp::ALL.iter().zip(&chunk[1..]) {
            if c < best.1 {
                best = (vw.k(), c);
            }
            print!(" {:>8.3}", c as f64 / base as f64);
        }
        println!(" {:>7}", best.0);
        bests.push((d.name().to_string(), best.0));
    }
    println!(
        "(expected shape: hub-heavy graphs minimize at large K — 16/32; low-degree regular \
         graphs at small K, where unused lanes are the dominant cost)"
    );
    bests
}
