//! F3 — the virtual-warp-size sweep: execution time for K ∈ {1..32},
//! normalized to the baseline. This is the paper's imbalance-vs-ALU
//! -underutilization trade-off figure: the optimum K grows with degree
//! variance.

use crate::util::{banner, bfs_fresh, built_datasets};
use maxwarp::{ExecConfig, Method, VirtualWarp};
use maxwarp_graph::Scale;

/// Print normalized time per K; returns `(dataset, best_k)` pairs.
pub fn run(scale: Scale) -> Vec<(String, u32)> {
    banner(
        "F3",
        "BFS time vs virtual warp size (normalized to baseline; <1 = faster)",
        scale,
    );
    print!("{:<14} {:>10}", "dataset", "baseline");
    for vw in VirtualWarp::ALL {
        print!(" {:>8}", vw.to_string());
    }
    println!(" {:>7}", "best-K");
    let exec = ExecConfig::default();
    let mut bests = Vec::new();
    for (d, g, src) in built_datasets(scale) {
        let base = bfs_fresh(&g, src, Method::Baseline, &exec).run.cycles();
        print!("{:<14} {:>10}", d.name(), base);
        let mut best = (0u32, u64::MAX);
        for vw in VirtualWarp::ALL {
            let c = bfs_fresh(&g, src, Method::warp(vw.k()), &exec).run.cycles();
            if c < best.1 {
                best = (vw.k(), c);
            }
            print!(" {:>8.3}", c as f64 / base as f64);
        }
        println!(" {:>7}", best.0);
        bests.push((d.name().to_string(), best.0));
    }
    println!(
        "(expected shape: hub-heavy graphs minimize at large K — 16/32; low-degree regular \
         graphs at small K, where unused lanes are the dominant cost)"
    );
    bests
}
