//! F3 — the virtual-warp-size sweep: execution time for K ∈ {1..32},
//! normalized to the baseline. This is the paper's imbalance-vs-ALU
//! -underutilization trade-off figure: the optimum K grows with degree
//! variance.
//!
//! The sweep is [`method_table::k_sweep`] measured through the serving
//! layer's [`probe_one`] — the same code path the online autotuner uses —
//! so the "best K" printed here is definitionally the method the tuner
//! would pick for BFS when probing without sampling.

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, built_datasets_par, device, launch_ok};
use maxwarp::{method_table, ExecConfig, Method};
use maxwarp_graph::Scale;
use maxwarp_serve::{probe_one, Algo, GraphEntry};

/// Print normalized time per K; returns `(dataset, best_k)` pairs.
pub fn run(scale: Scale, h: &Harness) -> Vec<(String, u32)> {
    banner(
        "F3",
        "BFS time vs virtual warp size (normalized to baseline; <1 = faster)",
        scale,
    );
    let methods = method_table::k_sweep();
    print!("{:<14} {:>10}", "dataset", "baseline");
    for m in &methods[1..] {
        print!(" {:>8}", m.spec());
    }
    println!(" {:>7}", "best-K");
    let exec = ExecConfig::default();
    let gpu = device();
    let built = built_datasets_par(scale, h);
    let entries: Vec<GraphEntry> = built
        .iter()
        .map(|(d, g, _)| GraphEntry::new(d.name(), g.clone()))
        .collect();
    let (gpu, exec, methods) = (&gpu, &exec, &methods);
    let mut cells = Vec::new();
    for ((d, _, _), entry) in built.iter().zip(&entries) {
        for &m in methods.iter() {
            cells.push(Cell::new(format!("{} {}", d.name(), m.spec()), move || {
                launch_ok(probe_one(gpu, exec, entry, Algo::Bfs, m))
            }));
        }
    }
    let outs = h.run("F3", cells);

    let stride = methods.len();
    let mut bests = Vec::new();
    for ((d, _, _), chunk) in built.iter().zip(outs.chunks(stride)) {
        let Some(chunk) = row("F3", d.name(), chunk) else {
            continue;
        };
        let base = *chunk[0];
        print!("{:<14} {:>10}", d.name(), base);
        let mut best = (0u32, u64::MAX);
        for (m, &&c) in methods[1..].iter().zip(&chunk[1..]) {
            let k = match m {
                Method::WarpCentric(o) => o.vw.k(),
                Method::Baseline => unreachable!("k_sweep tail is warp-centric"),
            };
            if c < best.1 {
                best = (k, c);
            }
            print!(" {:>8.3}", c as f64 / base as f64);
        }
        println!(" {:>7}", best.0);
        bests.push((d.name().to_string(), best.0));
    }
    println!(
        "(expected shape: hub-heavy graphs minimize at large K — 16/32; low-degree regular \
         graphs at small K, where unused lanes are the dominant cost)"
    );
    bests
}
