//! A2 — frontier-representation ablation (beyond the paper): the level
//! -array scan formulation (the paper's) vs explicit frontier queues with
//! warp-cooperative enqueue.
//!
//! Scan pays O(n) per level; queues pay O(frontier). On high-diameter
//! graphs (road networks: hundreds of levels, slim frontiers) queues win
//! by multiples; on small-diameter graphs the formulations tie.

use crate::harness::{Cell, Harness};
use crate::util::{banner, built_datasets_par, f, launch_ok, upload_fresh};
use maxwarp::{run_bfs, run_bfs_queue, ExecConfig, Method};
use maxwarp_graph::Scale;

/// Print scan-vs-queue cycles per dataset and method.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "A2",
        "frontier representation: level-array scan vs warp-cooperative queue",
        scale,
    );
    println!(
        "{:<14} {:<9} {:>12} {:>12} {:>12} {:>8}",
        "dataset", "method", "scan-cyc", "queue-cyc", "levels", "scan/q"
    );
    let exec = ExecConfig::default();
    let built = built_datasets_par(scale, h);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        for m in [Method::Baseline, Method::warp(4)] {
            let name = d.name();
            cells.push(Cell::new(format!("{name} {}", m.label()), move || {
                let (mut gpu, dg) = upload_fresh(g);
                let scan = launch_ok(run_bfs(&mut gpu, &dg, src, m, &exec));
                let (mut gpu2, dg2) = upload_fresh(g);
                let queue = launch_ok(run_bfs_queue(&mut gpu2, &dg2, src, m, &exec));
                assert_eq!(scan.levels, queue.levels, "{} {}", name, m.label());
                format!(
                    "{:<14} {:<9} {:>12} {:>12} {:>12} {:>7}x",
                    name,
                    m.label(),
                    scan.run.cycles(),
                    queue.run.cycles(),
                    scan.run.iterations,
                    f(scan.run.cycles() as f64 / queue.run.cycles() as f64)
                )
            }));
        }
    }
    for row in h.run("A2", cells).into_iter().flatten() {
        println!("{row}");
    }
    println!(
        "(expected shape: the queue wins where per-level scans dominate — RoadNet* at \
         medium scale reaches 3.5-5.4x — and costs a few percent of enqueue overhead on \
         short-diameter graphs or when frontiers are too thin to fill the machine)"
    );
}
