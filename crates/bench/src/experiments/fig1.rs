//! F1 — motivation: intra-warp workload imbalance and SIMD-lane (ALU)
//! underutilization of the *baseline* thread-per-vertex BFS.
//!
//! Reproduces the paper's motivating measurement: on heavy-tailed graphs
//! the baseline kernel's warps are dominated by their slowest lane, so
//! lane utilization collapses and per-warp work varies wildly.

use crate::harness::{Cell, Harness};
use crate::util::{banner, bfs_fresh, f};
use maxwarp::{ExecConfig, Method};
use maxwarp_graph::{Dataset, Scale};

/// Print per-dataset imbalance metrics of baseline BFS.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "F1",
        "baseline BFS: lane utilization and warp imbalance",
        scale,
    );
    println!(
        "{:<14} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "dataset", "lane-util", "warp-cv", "max/mean", "p99-instr", "max-instr"
    );
    let cells = Dataset::ALL
        .iter()
        .map(|&d| {
            Cell::new(d.name(), move || {
                let g = d.build(scale);
                let src = d.source(&g);
                let out = bfs_fresh(&g, src, Method::Baseline, &ExecConfig::default());
                let s = &out.run.stats;
                let mut per_warp = s.per_warp_instructions.clone();
                per_warp.sort_unstable();
                let p99 = per_warp[((per_warp.len() as f64 - 1.0) * 0.99) as usize];
                let max = *per_warp.last().unwrap_or(&0);
                format!(
                    "{:<14} {:>8.1}% {:>10} {:>12} {:>12} {:>12}",
                    d.name(),
                    s.lane_utilization() * 100.0,
                    f(s.warp_imbalance_cv()),
                    f(s.warp_imbalance_max_over_mean()),
                    p99,
                    max,
                )
            })
        })
        .collect();
    for row in h.run("F1", cells).into_iter().flatten() {
        println!("{row}");
    }
    println!(
        "(expected shape: heavy-tailed graphs — RMAT, LiveJournal*, WikiTalk* — show low \
         lane-util and max/mean >> 1; Regular/RoadNet stay balanced)"
    );
}
