//! A3 — level-by-level execution profile (beyond the paper): where the
//! time goes inside one BFS. Shows the hub level dominating the baseline
//! on skewed graphs, and the long tail of tiny levels on meshes.

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, bfs_fresh, build_datasets_subset, f};
use maxwarp::{BfsOutput, ExecConfig, Method};
use maxwarp_graph::{Dataset, Scale};

fn frontier_sizes(out: &BfsOutput) -> Vec<u32> {
    let depth = out
        .levels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    let mut sizes = vec![0u32; depth as usize + 1];
    for &l in &out.levels {
        if l != u32::MAX {
            sizes[l as usize] += 1;
        }
    }
    sizes
}

/// Print per-level frontier sizes and cycles for baseline vs vw32.
pub fn run(scale: Scale, h: &Harness) {
    banner("A3", "level-by-level BFS profile: baseline vs vw32", scale);
    let exec = ExecConfig::default();
    let datasets = [Dataset::WikiTalkLike, Dataset::RoadNet];
    let built = build_datasets_subset(scale, h, &datasets);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        cells.push(Cell::new(format!("{} baseline", d.name()), move || {
            bfs_fresh(g, src, Method::Baseline, &exec)
        }));
        cells.push(Cell::new(format!("{} vw32", d.name()), move || {
            bfs_fresh(g, src, Method::warp(32), &exec)
        }));
    }
    let outs = h.run("A3", cells);

    for ((d, _, _), chunk) in built.iter().zip(outs.chunks(2)) {
        let Some(chunk) = row("A3", d.name(), chunk) else {
            continue;
        };
        let (base, warp) = (chunk[0], chunk[1]);
        let sizes = frontier_sizes(base);
        println!(
            "{} ({} levels):",
            d.name(),
            base.run.cycles_per_iteration.len()
        );
        println!(
            "  {:>6} {:>10} {:>14} {:>14} {:>8}",
            "level", "frontier", "baseline-cyc", "vw32-cyc", "b/w"
        );
        let n_levels = base.run.cycles_per_iteration.len();
        let shown = n_levels.min(12);
        for l in 0..shown {
            let fr = sizes.get(l).copied().unwrap_or(0);
            let bc = base.run.cycles_per_iteration[l];
            let wc = warp.run.cycles_per_iteration.get(l).copied().unwrap_or(0);
            println!(
                "  {:>6} {:>10} {:>14} {:>14} {:>7}x",
                l,
                fr,
                bc,
                wc,
                f(bc as f64 / wc.max(1) as f64)
            );
        }
        if n_levels > shown {
            let bc: u64 = base.run.cycles_per_iteration[shown..].iter().sum();
            let wc: u64 = warp.run.cycles_per_iteration[shown..].iter().sum();
            println!(
                "  {:>6} {:>10} {:>14} {:>14} {:>7}x",
                format!("{}+", shown),
                "...",
                bc,
                wc,
                f(bc as f64 / wc.max(1) as f64)
            );
        }
    }
    println!(
        "(expected shape: on WikiTalk* the levels that touch the hubs dominate the \
         baseline and shrink by an order of magnitude under vw32; on RoadNet* every \
         level is thin and vw32 pays its lane-waste tax on each)"
    );
}
