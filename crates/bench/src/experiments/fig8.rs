//! F8 — occupancy / block-size sensitivity (ablation): the timing model's
//! latency hiding depends on resident warps per SM, which the block size
//! controls through the occupancy rules.

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, bfs_fresh, build_datasets_subset, device};
use maxwarp::{ExecConfig, Method};
use maxwarp_graph::{Dataset, Scale};

/// Print BFS cycles at vw8 across block sizes.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "F8",
        "block-size / occupancy sweep (BFS, vw8; cycles)",
        scale,
    );
    let blocks = [64u32, 128, 256, 512];
    let cfg = device();
    print!("{:<14}", "dataset");
    for b in blocks {
        print!(" {:>7}(o={:>2})", b, cfg.occupancy_warps(b, 0));
    }
    println!();
    let subset = [Dataset::Rmat, Dataset::WikiTalkLike, Dataset::RoadNet];
    let built = build_datasets_subset(scale, h, &subset);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        for b in blocks {
            cells.push(Cell::new(format!("{} block={b}", d.name()), move || {
                let exec = ExecConfig {
                    block_threads: b,
                    ..ExecConfig::default()
                };
                bfs_fresh(g, src, Method::warp(8), &exec).run.cycles()
            }));
        }
    }
    let outs = h.run("F8", cells);

    for ((d, _, _), chunk) in built.iter().zip(outs.chunks(blocks.len())) {
        let Some(chunk) = row("F8", d.name(), chunk) else {
            continue;
        };
        print!("{:<14}", d.name());
        for c in chunk {
            print!(" {:>13}", c);
        }
        println!();
    }
    println!(
        "(expected shape: cycles fall as occupancy rises — more resident warps hide the \
         memory latency of this bandwidth-bound kernel — and flatten at full occupancy)"
    );
}
