//! F8 — occupancy / block-size sensitivity (ablation): the timing model's
//! latency hiding depends on resident warps per SM, which the block size
//! controls through the occupancy rules.

use crate::util::{banner, bfs_fresh, built_datasets, device};
use maxwarp::{ExecConfig, Method};
use maxwarp_graph::{Dataset, Scale};

/// Print BFS cycles at vw8 across block sizes.
pub fn run(scale: Scale) {
    banner("F8", "block-size / occupancy sweep (BFS, vw8; cycles)", scale);
    let blocks = [64u32, 128, 256, 512];
    let cfg = device();
    print!("{:<14}", "dataset");
    for b in blocks {
        print!(
            " {:>7}(o={:>2})",
            b,
            cfg.occupancy_warps(b, 0)
        );
    }
    println!();
    let subset = [Dataset::Rmat, Dataset::WikiTalkLike, Dataset::RoadNet];
    for (d, g, src) in built_datasets(scale) {
        if !subset.contains(&d) {
            continue;
        }
        print!("{:<14}", d.name());
        for b in blocks {
            let exec = ExecConfig {
                block_threads: b,
                ..ExecConfig::default()
            };
            let c = bfs_fresh(&g, src, Method::warp(8), &exec).run.cycles();
            print!(" {:>13}", c);
        }
        println!();
    }
    println!(
        "(expected shape: cycles fall as occupancy rises — more resident warps hide the \
         memory latency of this bandwidth-bound kernel — and flatten at full occupancy)"
    );
}
