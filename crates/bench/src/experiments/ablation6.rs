//! A6 — multi-source BFS batching (extension): one bitmask-frontier sweep
//! answering K sources vs K independent traversals. The follow-on work of
//! the paper's authors (MS-BFS) motivates this; the per-edge work is the
//! same irregular loop, so the warp-centric mapping composes with it.

use crate::util::{banner, built_datasets, device, f};
use maxwarp::{run_bfs, run_msbfs, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{Dataset, Scale};
use maxwarp_simt::Gpu;

/// Print batched vs sequential cycles for an 8-source batch.
pub fn run(scale: Scale) {
    banner(
        "A6",
        "multi-source BFS: one 8-source bitmask sweep vs 8 separate runs (vw8)",
        scale,
    );
    println!(
        "{:<14} {:>14} {:>14} {:>9}",
        "dataset", "batched-cyc", "sequential-cyc", "batching-x"
    );
    let exec = ExecConfig::default();
    let subset = [Dataset::Rmat, Dataset::WikiTalkLike, Dataset::SmallWorld];
    for (d, g, src) in built_datasets(scale) {
        if !subset.contains(&d) {
            continue;
        }
        let sources: Vec<u32> = (0..8u32)
            .map(|s| (src + s * (g.num_vertices() / 9).max(1)) % g.num_vertices())
            .collect();
        let mut gpu = Gpu::new(device());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let batched = run_msbfs(&mut gpu, &dg, &sources, Method::warp(8), &exec)
            .unwrap()
            .run
            .cycles();
        let mut sequential = 0u64;
        for &s in &sources {
            let mut gpu = Gpu::new(device());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            sequential += run_bfs(&mut gpu, &dg, s, Method::warp(8), &exec)
                .unwrap()
                .run
                .cycles();
        }
        println!(
            "{:<14} {:>14} {:>14} {:>8}x",
            d.name(),
            batched,
            sequential,
            f(sequential as f64 / batched as f64)
        );
    }
    println!(
        "(expected shape: batching amortizes the frontier scans and adjacency reads over \
         all sources — multiples of saving, largest where traversals overlap most)"
    );
}
