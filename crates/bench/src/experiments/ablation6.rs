//! A6 — multi-source BFS batching (extension): one bitmask-frontier sweep
//! answering K sources vs K independent traversals. The follow-on work of
//! the paper's authors (MS-BFS) motivates this; the per-edge work is the
//! same irregular loop, so the warp-centric mapping composes with it.

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, build_datasets_subset, f, launch_ok, upload_fresh};
use maxwarp::{run_bfs, run_msbfs, ExecConfig, Method};
use maxwarp_graph::{Dataset, Scale};

/// Print batched vs sequential cycles for an 8-source batch.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "A6",
        "multi-source BFS: one 8-source bitmask sweep vs 8 separate runs (vw8)",
        scale,
    );
    println!(
        "{:<14} {:>14} {:>14} {:>9}",
        "dataset", "batched-cyc", "sequential-cyc", "batching-x"
    );
    let exec = ExecConfig::default();
    let subset = [Dataset::Rmat, Dataset::WikiTalkLike, Dataset::SmallWorld];
    let built = build_datasets_subset(scale, h, &subset);

    // One batched cell plus one cell per individual source.
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let sources: Vec<u32> = (0..8u32)
            .map(|s| (src + s * (g.num_vertices() / 9).max(1)) % g.num_vertices())
            .collect();
        let batch_sources = sources.clone();
        cells.push(Cell::new(format!("{} batched", d.name()), move || {
            let (mut gpu, dg) = upload_fresh(g);
            launch_ok(run_msbfs(
                &mut gpu,
                &dg,
                &batch_sources,
                Method::warp(8),
                &exec,
            ))
            .run
            .cycles()
        }));
        for (i, s) in sources.into_iter().enumerate() {
            cells.push(Cell::new(format!("{} src{i}", d.name()), move || {
                let (mut gpu, dg) = upload_fresh(g);
                launch_ok(run_bfs(&mut gpu, &dg, s, Method::warp(8), &exec))
                    .run
                    .cycles()
            }));
        }
    }
    let outs = h.run("A6", cells);

    for ((d, _, _), chunk) in built.iter().zip(outs.chunks(9)) {
        let Some(chunk) = row("A6", d.name(), chunk) else {
            continue;
        };
        let batched = *chunk[0];
        let sequential: u64 = chunk[1..].iter().copied().sum();
        println!(
            "{:<14} {:>14} {:>14} {:>8}x",
            d.name(),
            batched,
            sequential,
            f(sequential as f64 / batched as f64)
        );
    }
    println!(
        "(expected shape: batching amortizes the frontier scans and adjacency reads over \
         all sources — multiples of saving, largest where traversals overlap most)"
    );
}
