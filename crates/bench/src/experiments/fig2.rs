//! F2 — the headline result: BFS speedup of the virtual warp-centric
//! method (best K per graph) over the baseline thread-per-vertex kernel.

use crate::harness::{row, Cell, Harness};
use crate::util::{
    banner, bfs_fresh_timed, built_datasets_par, device, f, reachable_edges, write_results,
};
use maxwarp::{geomean, rows_to_json, ExecConfig, Method, RunRow, VirtualWarp};
use maxwarp_graph::Scale;

/// Print baseline-vs-warp-centric cycles and speedups; returns the rows as
/// `(dataset, best_k, speedup)` for downstream assertions. Also writes all
/// measured configurations (with DRAM utilization and SM imbalance from
/// the timing engine) to `results/fig2_<scale>.json`.
pub fn run(scale: Scale, h: &Harness) -> Vec<(String, u32, f64)> {
    banner(
        "F2",
        "BFS speedup: virtual warp-centric (best K) vs baseline",
        scale,
    );
    println!(
        "{:<14} {:>12} {:>12} {:>7} {:>9}",
        "dataset", "baseline-cyc", "warp-cyc", "best-K", "speedup"
    );
    let exec = ExecConfig::default();
    let clock_hz = device().clock_hz;
    let built = built_datasets_par(scale, h);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        cells.push(Cell::new(format!("{} baseline", d.name()), move || {
            bfs_fresh_timed(g, src, Method::Baseline, &exec)
        }));
        for vw in VirtualWarp::PAPER_SWEEP {
            cells.push(Cell::new(format!("{} {vw}", d.name()), move || {
                bfs_fresh_timed(g, src, Method::warp(vw.k()), &exec)
            }));
        }
    }
    let outs = h.run("F2", cells);

    let stride = 1 + VirtualWarp::PAPER_SWEEP.len();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut heavy = Vec::new();
    let mut light = Vec::new();
    for ((d, g, _), chunk) in built.iter().zip(outs.chunks(stride)) {
        let Some(chunk) = row("F2", d.name(), chunk) else {
            continue;
        };
        let (base, base_timing) = chunk[0];
        let edges = reachable_edges(g, &base.levels);
        json_rows.push(
            RunRow::new(d.name(), "baseline", &base.run, edges, clock_hz).with_timing(base_timing),
        );
        let mut best: Option<(u32, u64)> = None;
        for (vw, (out, timing)) in VirtualWarp::PAPER_SWEEP.iter().zip(&chunk[1..]) {
            let c = out.run.cycles();
            assert_eq!(out.levels, base.levels, "level mismatch at {vw}");
            json_rows.push(
                RunRow::new(
                    d.name(),
                    &format!("vw{}", vw.k()),
                    &out.run,
                    edges,
                    clock_hz,
                )
                .with_timing(timing),
            );
            if best.is_none_or(|(_, bc)| c < bc) {
                best = Some((vw.k(), c));
            }
        }
        let Some((k, wc)) = best else {
            unreachable!("at least one virtual-warp width is always measured");
        };
        let speedup = base.run.cycles() as f64 / wc as f64;
        println!(
            "{:<14} {:>12} {:>12} {:>7} {:>8}x",
            d.name(),
            base.run.cycles(),
            wc,
            k,
            f(speedup)
        );
        if d.heavy_tailed() {
            heavy.push(speedup);
        } else {
            light.push(speedup);
        }
        rows.push((d.name().to_string(), k, speedup));
    }
    println!(
        "geomean speedup: heavy-tailed {:.2}x, other {:.2}x",
        geomean(&heavy),
        geomean(&light)
    );
    println!(
        "(expected shape: heavy-tailed group speeds up by several x — the paper reports up \
         to ~9x; low-variance graphs hover near or below 1x)"
    );
    let path = write_results(
        &format!("fig2_{}.json", crate::util::scale_name(scale)),
        &rows_to_json(&json_rows),
    );
    println!("wrote {}", path.display());
    rows
}
