//! A5 — beyond traversal: betweenness centrality and triangle counting
//! under the warp-centric mapping (the workload classes the paper's
//! authors took up in follow-on work).

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, f, fresh_gpu, launch_ok, upload_fresh};
use maxwarp::{run_betweenness, run_coloring, run_triangles, ExecConfig, Method};
use maxwarp_graph::{Csr, Dataset, Orientation, Scale};

fn methods() -> [Method; 3] {
    maxwarp::method_table::comparison_trio().map(|(_, m)| m)
}

/// Print baseline-vs-warp cycles for BC (sampled sources) and triangle
/// counting.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "A5",
        "betweenness centrality (4 sources), triangle counting, graph coloring",
        scale,
    );
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>7} {:>9}",
        "dataset", "workload", "baseline-cyc", "warp-cyc", "best-K", "speedup"
    );
    let exec = ExecConfig::default();
    let subset = [
        Dataset::Rmat,
        Dataset::LiveJournalLike,
        Dataset::WikiTalkLike,
        Dataset::RoadNet,
    ];

    // Build stage: each dataset plus its symmetric view.
    let build_cells = subset
        .iter()
        .map(|&d| {
            Cell::new(format!("build {}", d.name()), move || {
                let g = d.build(scale);
                let src = d.source(&g);
                let gs = if g.is_symmetric() {
                    g.clone()
                } else {
                    g.symmetrize()
                };
                (d, g, src, gs)
            })
        })
        .collect();
    let built: Vec<(Dataset, Csr, u32, Csr)> = h
        .run("A5:build", build_cells)
        .into_iter()
        .flatten()
        .collect();

    // Run stage: one cell per (dataset, workload, method).
    let mut keys = Vec::new();
    let mut cells = Vec::new();
    for (d, g, src, gs) in &built {
        // --- BC on a small source sample (full BC is O(nm)). The
        //     ~1000-level mesh at Medium scale needs thousands of
        //     per-level launches per source — pathological for any
        //     level-synchronous GPU Brandes — so it is skipped there. ---
        let skip_bc = *d == Dataset::RoadNet && scale == Scale::Medium;
        if !skip_bc {
            let sources = [*src, 1, g.num_vertices() / 2, g.num_vertices() - 1];
            for m in methods() {
                cells.push(Cell::new(
                    format!("{} bc {}", d.name(), m.label()),
                    move || {
                        let (mut gpu, dg) = upload_fresh(g);
                        launch_ok(run_betweenness(&mut gpu, &dg, &sources, m, &exec))
                            .run
                            .cycles()
                    },
                ));
            }
            keys.push(("bc", d.name()));
        }

        // --- Triangles need symmetric input. ---
        for m in methods() {
            cells.push(Cell::new(
                format!("{} triangles {}", d.name(), m.label()),
                move || {
                    let mut gpu = fresh_gpu();
                    launch_ok(run_triangles(&mut gpu, gs, m, &exec, Orientation::ByDegree))
                        .run
                        .cycles()
                },
            ));
        }
        keys.push(("triangles", d.name()));

        // --- Luby-round coloring (also on the symmetric view). ---
        for m in methods() {
            cells.push(Cell::new(
                format!("{} coloring {}", d.name(), m.label()),
                move || {
                    let (mut gpu, dg) = upload_fresh(gs);
                    launch_ok(run_coloring(&mut gpu, &dg, m, &exec))
                        .run
                        .cycles()
                },
            ));
        }
        keys.push(("coloring", d.name()));
    }
    let outs = h.run("A5", cells);

    for ((workload, dataset), chunk) in keys.iter().zip(outs.chunks(methods().len())) {
        let Some(chunk) = row("A5", &format!("{dataset} {workload}"), chunk) else {
            continue;
        };
        report(
            workload,
            dataset,
            &chunk.into_iter().copied().collect::<Vec<_>>(),
        );
    }
    println!(
        "(expected shape: both workloads inherit BFS's pattern — warp-centric wins on the \
         heavy-tailed graphs, is neutral-to-negative on the mesh)"
    );
}

/// `cycles` holds one entry per [`methods`] row: baseline, then K=8, 32.
fn report(workload: &str, dataset: &str, cycles: &[u64]) {
    let base = cycles[0];
    let mut best = (0u32, u64::MAX);
    for (k, &c) in [8u32, 32].iter().zip(&cycles[1..]) {
        if c < best.1 {
            best = (*k, c);
        }
    }
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>7} {:>8}x",
        dataset,
        workload,
        base,
        best.1,
        best.0,
        f(base as f64 / best.1 as f64)
    );
}
