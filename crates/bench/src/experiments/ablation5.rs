//! A5 — beyond traversal: betweenness centrality and triangle counting
//! under the warp-centric mapping (the workload classes the paper's
//! authors took up in follow-on work).

use crate::util::{banner, built_datasets, device, f};
use maxwarp::{run_betweenness, run_coloring, run_triangles, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{Dataset, Orientation, Scale};
use maxwarp_simt::Gpu;

/// Print baseline-vs-warp cycles for BC (sampled sources) and triangle
/// counting.
pub fn run(scale: Scale) {
    banner(
        "A5",
        "betweenness centrality (4 sources), triangle counting, graph coloring",
        scale,
    );
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>7} {:>9}",
        "dataset", "workload", "baseline-cyc", "warp-cyc", "best-K", "speedup"
    );
    let exec = ExecConfig::default();
    let subset = [
        Dataset::Rmat,
        Dataset::LiveJournalLike,
        Dataset::WikiTalkLike,
        Dataset::RoadNet,
    ];
    for (d, g, src) in built_datasets(scale) {
        if !subset.contains(&d) {
            continue;
        }
        // --- BC on a small source sample (full BC is O(nm)). The
        //     ~1000-level mesh at Medium scale needs thousands of
        //     per-level launches per source — pathological for any
        //     level-synchronous GPU Brandes — so it is skipped there. ---
        let skip_bc = d == Dataset::RoadNet && scale == Scale::Medium;
        let sources = [src, 1, g.num_vertices() / 2, g.num_vertices() - 1];
        let bc_cycles = |m: Method| {
            let mut gpu = Gpu::new(device());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            run_betweenness(&mut gpu, &dg, &sources, m, &exec)
                .unwrap()
                .run
                .cycles()
        };
        if !skip_bc {
            report("bc", d.name(), bc_cycles);
        }

        // --- Triangles need symmetric input. ---
        let gs = if g.is_symmetric() { g.clone() } else { g.symmetrize() };
        let tri_cycles = |m: Method| {
            let mut gpu = Gpu::new(device());
            run_triangles(&mut gpu, &gs, m, &exec, Orientation::ByDegree)
                .unwrap()
                .run
                .cycles()
        };
        report("triangles", d.name(), tri_cycles);

        // --- Luby-round coloring (also on the symmetric view). ---
        let col_cycles = |m: Method| {
            let mut gpu = Gpu::new(device());
            let dg = DeviceGraph::upload(&mut gpu, &gs);
            run_coloring(&mut gpu, &dg, m, &exec).unwrap().run.cycles()
        };
        report("coloring", d.name(), col_cycles);
    }
    println!(
        "(expected shape: both workloads inherit BFS's pattern — warp-centric wins on the \
         heavy-tailed graphs, is neutral-to-negative on the mesh)"
    );
}

fn report(workload: &str, dataset: &str, cycles: impl Fn(Method) -> u64) {
    let base = cycles(Method::Baseline);
    let mut best = (0u32, u64::MAX);
    for k in [8u32, 32] {
        let c = cycles(Method::warp(k));
        if c < best.1 {
            best = (k, c);
        }
    }
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>7} {:>8}x",
        dataset,
        workload,
        base,
        best.1,
        best.0,
        f(base as f64 / best.1 as f64)
    );
}
