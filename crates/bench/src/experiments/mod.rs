//! One module per paper artifact (see DESIGN.md's experiment index).

pub mod ablation1;
pub mod ablation2;
pub mod ablation3;
pub mod ablation4;
pub mod ablation5;
pub mod ablation6;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
