//! One module per paper artifact (see DESIGN.md's experiment index),
//! plus the [`ALL`] registry that `repro_all --only/--list` selects from.

pub mod ablation1;
pub mod ablation2;
pub mod ablation3;
pub mod ablation4;
pub mod ablation5;
pub mod ablation6;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod shard;
pub mod table1;

use crate::harness::Harness;
use maxwarp_graph::Scale;

/// A named, runnable experiment. Runners that return per-row data for
/// downstream consumers (F2/F3/F7) are wrapped so the registry signature
/// is uniform; callers that need the returned data call the module's
/// `run` directly.
pub struct Experiment {
    /// Stable CLI name (`repro_all --only <name>`).
    pub name: &'static str,
    /// One-line description, shown by `repro_all --list`.
    pub title: &'static str,
    pub run: fn(Scale, &Harness),
}

/// Every experiment, in the order `repro_all` runs them.
pub const ALL: &[Experiment] = &[
    Experiment {
        name: "table1",
        title: "graph datasets and degree statistics",
        run: table1::run,
    },
    Experiment {
        name: "fig1",
        title: "baseline BFS: lane utilization and warp imbalance",
        run: fig1::run,
    },
    Experiment {
        name: "fig2",
        title: "BFS speedup: virtual warp-centric (best K) vs baseline",
        run: |scale, h| {
            let _ = fig2::run(scale, h);
        },
    },
    Experiment {
        name: "fig3",
        title: "BFS time vs virtual warp size (autotuner probe path)",
        run: |scale, h| {
            let _ = fig3::run(scale, h);
        },
    },
    Experiment {
        name: "fig4",
        title: "techniques: dynamic workload distribution and outlier deferral",
        run: fig4::run,
    },
    Experiment {
        name: "fig5",
        title: "BFS throughput: CPU (measured) vs simulated GPU",
        run: fig5::run,
    },
    Experiment {
        name: "fig6",
        title: "other algorithms: baseline vs warp-centric",
        run: fig6::run,
    },
    Experiment {
        name: "fig7",
        title: "memory coalescing: DRAM transactions, baseline vs vw32",
        run: |scale, h| {
            let _ = fig7::run(scale, h);
        },
    },
    Experiment {
        name: "fig8",
        title: "block-size / occupancy sweep (BFS, vw8)",
        run: fig8::run,
    },
    Experiment {
        name: "ablation1",
        title: "vertex-ordering ablation: BFS cycles under relabelings",
        run: ablation1::run,
    },
    Experiment {
        name: "ablation2",
        title: "frontier representation: level-array scan vs warp-cooperative queue",
        run: ablation2::run,
    },
    Experiment {
        name: "ablation3",
        title: "level-by-level BFS profile: baseline vs vw32",
        run: ablation3::run,
    },
    Experiment {
        name: "ablation4",
        title: "read-only cache: BFS with CSR arrays through the texture/L2 path",
        run: ablation4::run,
    },
    Experiment {
        name: "ablation5",
        title: "betweenness centrality, triangle counting, graph coloring",
        run: ablation5::run,
    },
    Experiment {
        name: "ablation6",
        title: "multi-source BFS: one 8-source bitmask sweep vs separate runs",
        run: ablation6::run,
    },
    Experiment {
        name: "shard",
        title: "multi-device sharding: identity and strong scaling over the interconnect model",
        run: shard::run,
    },
];

/// Look up an experiment by CLI name (case-insensitive).
pub fn find(name: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for e in ALL {
            assert!(seen.insert(e.name), "duplicate experiment name {}", e.name);
            assert!(find(e.name).is_some());
            assert!(
                find(&e.name.to_uppercase()).is_some(),
                "lookup is case-insensitive"
            );
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn names_never_collide_with_scale_keywords() {
        // `scale_from_args` scans the same argv; an experiment named like a
        // scale would make `repro_all tiny --only tiny` ambiguous.
        for e in ALL {
            assert!(!matches!(e.name, "tiny" | "small" | "medium"));
        }
    }
}
