//! F4 — the two workload-distribution techniques: *deferring outliers*
//! and *dynamic workload distribution*, applied on top of the warp-centric
//! kernel.

use crate::util::{banner, bfs_fresh, built_datasets, defer_threshold, f};
use maxwarp::{ExecConfig, Method, VirtualWarp, WarpCentricOpts};
use maxwarp_graph::Scale;

/// Print cycles for {static, +dynamic, +defer, +both} at K ∈ {8, 32}.
pub fn run(scale: Scale) {
    banner(
        "F4",
        "techniques: dynamic workload distribution and outlier deferral (cycles, and x vs static)",
        scale,
    );
    let exec = ExecConfig::default();
    println!(
        "{:<14} {:>4} {:>12} {:>10} {:>10} {:>10}",
        "dataset", "K", "static", "+dynamic", "+defer", "+both"
    );
    for (d, g, src) in built_datasets(scale) {
        let thresh = defer_threshold(&g);
        for k in [8u32, 32] {
            let vw = VirtualWarp::new(k);
            let cyc = |opts: WarpCentricOpts| {
                bfs_fresh(&g, src, Method::WarpCentric(opts), &exec)
                    .run
                    .cycles()
            };
            let st = cyc(WarpCentricOpts::plain(vw));
            let dy = cyc(WarpCentricOpts::plain(vw).with_dynamic());
            let de = cyc(WarpCentricOpts::plain(vw).with_defer(thresh));
            let bo = cyc(WarpCentricOpts::plain(vw).with_dynamic().with_defer(thresh));
            let rel = |c: u64| format!("{}x", f(st as f64 / c as f64));
            println!(
                "{:<14} {:>4} {:>12} {:>10} {:>10} {:>10}",
                d.name(),
                k,
                st,
                rel(dy),
                rel(de),
                rel(bo)
            );
        }
    }
    println!(
        "(expected shape: on hub graphs the techniques give >1x — most from deferral at K=8; \
         on uniform graphs they are ~1x or slightly below due to queueing overhead)"
    );
}
