//! F4 — the two workload-distribution techniques: *deferring outliers*
//! and *dynamic workload distribution*, applied on top of the warp-centric
//! kernel.

use crate::harness::{Cell, Harness};
use crate::util::{banner, bfs_fresh, built_datasets_par, defer_threshold, f};
use maxwarp::{method_table, ExecConfig, VirtualWarp};
use maxwarp_graph::Scale;

/// Print cycles for {static, +dynamic, +defer, +both} at K ∈ {8, 32}.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "F4",
        "techniques: dynamic workload distribution and outlier deferral (cycles, and x vs static)",
        scale,
    );
    let exec = ExecConfig::default();
    println!(
        "{:<14} {:>4} {:>12} {:>10} {:>10} {:>10}",
        "dataset", "K", "static", "+dynamic", "+defer", "+both"
    );
    let built = built_datasets_par(scale, h);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        let thresh = defer_threshold(g);
        for k in [8u32, 32] {
            let variants = method_table::technique_variants(VirtualWarp::new(k), thresh);
            for (tag, method) in variants {
                cells.push(Cell::new(format!("{} K={k} {tag}", d.name()), move || {
                    bfs_fresh(g, src, method, &exec).run.cycles()
                }));
            }
        }
    }
    let outs = h.run("F4", cells);

    // 2 K values × 4 variants per dataset, in cell order.
    let mut it = outs.into_iter();
    for (d, _, _) in &built {
        for k in [8u32, 32] {
            let vals = [(); 4].map(|()| match it.next() {
                Some(v) => v,
                None => unreachable!("cell count mismatch"),
            });
            let [Some(st), Some(dy), Some(de), Some(bo)] = vals else {
                eprintln!("[F4] {} K={k}: skipping row — a cell failed", d.name());
                continue;
            };
            let rel = |c: u64| format!("{}x", f(st as f64 / c as f64));
            println!(
                "{:<14} {:>4} {:>12} {:>10} {:>10} {:>10}",
                d.name(),
                k,
                st,
                rel(dy),
                rel(de),
                rel(bo)
            );
        }
    }
    println!(
        "(expected shape: on hub graphs the techniques give >1x — most from deferral at K=8; \
         on uniform graphs they are ~1x or slightly below due to queueing overhead)"
    );
}
