//! F5 — GPU (simulated) vs CPU (measured): BFS traversal throughput.
//!
//! CPU numbers are real wall-clock on this machine; GPU numbers convert
//! simulated cycles at the device clock. The paper's shape: on large
//! heavy-tailed graphs the warp-centric GPU beats the multicore CPU, which
//! beats one core; on road networks the CPU is competitive.
//!
//! The simulated GPU cells run on the harness; the CPU wall-clock
//! measurements run serially *after* the workers have quiesced, so the
//! timings are not perturbed by harness threads (they are inherently
//! machine-dependent either way).

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, bfs_fresh, built_datasets_par, device, f, reachable_edges};
use maxwarp::{ExecConfig, Method, VirtualWarp};
use maxwarp_cpu::{bfs_parallel_default, bfs_sequential, default_threads, time_median};
use maxwarp_graph::Scale;

/// Print MTEPS for CPU-1, CPU-N, GPU-baseline, GPU-warp-centric.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "F5",
        "BFS throughput: CPU (measured) vs simulated GPU",
        scale,
    );
    let clock = device().clock_hz;
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}  (MTEPS; cpu-par uses {} threads)",
        "dataset",
        "cpu-seq",
        "cpu-par",
        "gpu-baseline",
        "gpu-warp",
        default_threads()
    );
    let exec = ExecConfig::default();
    let built = built_datasets_par(scale, h);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        cells.push(Cell::new(format!("{} baseline", d.name()), move || {
            bfs_fresh(g, src, Method::Baseline, &exec).run.cycles()
        }));
        for vw in VirtualWarp::PAPER_SWEEP {
            cells.push(Cell::new(format!("{} {vw}", d.name()), move || {
                bfs_fresh(g, src, Method::warp(vw.k()), &exec).run.cycles()
            }));
        }
    }
    let outs = h.run("F5:gpu", cells);

    let stride = 1 + VirtualWarp::PAPER_SWEEP.len();
    for ((d, g, src), chunk) in built.iter().zip(outs.chunks(stride)) {
        let Some(chunk) = row("F5", d.name(), chunk) else {
            continue;
        };
        let (levels, t_seq) = time_median(3, || bfs_sequential(g, *src));
        let (_, t_par) = time_median(3, || bfs_parallel_default(g, *src));
        let edges = reachable_edges(g, &levels);
        let mteps = |secs: f64| edges as f64 / secs / 1e6;

        let base = *chunk[0];
        let best = match chunk[1..].iter().min() {
            Some(b) => **b,
            None => unreachable!("each chunk carries the per-method cycle counts"),
        };
        let gpu_mteps = |cycles: u64| edges as f64 / (cycles as f64 / clock as f64) / 1e6;
        println!(
            "{:<14} {:>10} {:>10} {:>12} {:>12}",
            d.name(),
            f(mteps(t_seq.as_secs_f64())),
            f(mteps(t_par.as_secs_f64())),
            f(gpu_mteps(base)),
            f(gpu_mteps(best)),
        );
    }
    println!(
        "(expected shape: gpu-warp > cpu-par > cpu-seq on big heavy-tailed graphs; CPU \
         competitive on RoadNet*, where the GPU has little parallel slack per level)"
    );
}
