//! A1 — vertex-ordering ablation (beyond the paper): how much of each
//! method's performance comes from the graph's vertex labeling?
//!
//! Random relabeling destroys the neighbor-id locality that makes
//! `levels[neighbor]` gathers partially coalesce; BFS-order (Cuthill–McKee
//! flavoured) restores and improves it. The warp-centric method's
//! adjacency-list reads stay coalesced under any ordering — one of its
//! structural advantages.

use crate::util::{banner, bfs_fresh, f};
use maxwarp::{ExecConfig, Method};
use maxwarp_graph::{
    apply_permutation, bfs_permutation, random_permutation, Dataset, Scale,
};

/// Print cycles under natural / random / BFS orderings.
pub fn run(scale: Scale) {
    banner(
        "A1",
        "vertex-ordering ablation: BFS cycles under relabelings",
        scale,
    );
    println!(
        "{:<14} {:<9} {:>12} {:>12} {:>12} {:>14}",
        "dataset", "method", "natural", "random", "bfs-order", "random/natural"
    );
    let exec = ExecConfig::default();
    for d in [Dataset::Rmat, Dataset::LiveJournalLike, Dataset::RoadNet] {
        let g = d.build(scale);
        let src = d.source(&g);
        let rand_perm = random_permutation(g.num_vertices(), 0xA1);
        let g_rand = apply_permutation(&g, &rand_perm);
        let bfs_perm = bfs_permutation(&g, src);
        let g_bfs = apply_permutation(&g, &bfs_perm);
        for m in [Method::Baseline, Method::warp(8)] {
            let nat = bfs_fresh(&g, src, m, &exec).run.cycles();
            let rnd = bfs_fresh(&g_rand, rand_perm[src as usize], m, &exec)
                .run
                .cycles();
            let bfo = bfs_fresh(&g_bfs, bfs_perm[src as usize], m, &exec).run.cycles();
            println!(
                "{:<14} {:<9} {:>12} {:>12} {:>12} {:>13}x",
                d.name(),
                m.label(),
                nat,
                rnd,
                bfo,
                f(rnd as f64 / nat as f64)
            );
        }
    }
    println!(
        "(expected shape: ordering acts through *balance* as much as locality — random \
         relabeling spreads RMAT/LJ's id-clustered hubs across chunks and can help, while \
         on the mesh it destroys gather locality and hurts; BFS-order on the mesh packs \
         each frontier into one contiguous chunk, serializing it onto few warps)"
    );
}
