//! A1 — vertex-ordering ablation (beyond the paper): how much of each
//! method's performance comes from the graph's vertex labeling?
//!
//! Random relabeling destroys the neighbor-id locality that makes
//! `levels[neighbor]` gathers partially coalesce; BFS-order (Cuthill–McKee
//! flavoured) restores and improves it. The warp-centric method's
//! adjacency-list reads stay coalesced under any ordering — one of its
//! structural advantages.

use crate::harness::{Cell, Harness};
use crate::util::{banner, bfs_fresh, f};
use maxwarp::{ExecConfig, Method};
use maxwarp_graph::{apply_permutation, bfs_permutation, random_permutation, Csr, Dataset, Scale};

struct Orderings {
    d: Dataset,
    /// (graph, source) per ordering: natural, random, bfs-order.
    variants: [(Csr, u32); 3],
}

/// Print cycles under natural / random / BFS orderings.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "A1",
        "vertex-ordering ablation: BFS cycles under relabelings",
        scale,
    );
    println!(
        "{:<14} {:<9} {:>12} {:>12} {:>12} {:>14}",
        "dataset", "method", "natural", "random", "bfs-order", "random/natural"
    );
    let exec = ExecConfig::default();
    let datasets = [Dataset::Rmat, Dataset::LiveJournalLike, Dataset::RoadNet];

    // Build stage: each dataset with its two relabeled variants.
    let build_cells = datasets
        .iter()
        .map(|&d| {
            Cell::new(format!("build {}", d.name()), move || {
                let g = d.build(scale);
                let src = d.source(&g);
                let rand_perm = random_permutation(g.num_vertices(), 0xA1);
                let g_rand = apply_permutation(&g, &rand_perm);
                let bfs_perm = bfs_permutation(&g, src);
                let g_bfs = apply_permutation(&g, &bfs_perm);
                Orderings {
                    d,
                    variants: [
                        (g, src),
                        (g_rand, rand_perm[src as usize]),
                        (g_bfs, bfs_perm[src as usize]),
                    ],
                }
            })
        })
        .collect();
    let built: Vec<Orderings> = h
        .run("A1:build", build_cells)
        .into_iter()
        .flatten()
        .collect();

    // Run stage: one cell per (dataset, method, ordering).
    let mut cells = Vec::new();
    for o in &built {
        for m in [Method::Baseline, Method::warp(8)] {
            for (tag, (g, src)) in ["natural", "random", "bfs-order"].iter().zip(&o.variants) {
                let src = *src;
                cells.push(Cell::new(
                    format!("{} {} {tag}", o.d.name(), m.label()),
                    move || bfs_fresh(g, src, m, &exec).run.cycles(),
                ));
            }
        }
    }
    let outs = h.run("A1", cells);

    let mut it = outs.into_iter();
    for o in &built {
        for m in [Method::Baseline, Method::warp(8)] {
            let vals = [(); 3].map(|()| match it.next() {
                Some(v) => v,
                None => unreachable!("cell count mismatch"),
            });
            let [Some(nat), Some(rnd), Some(bfo)] = vals else {
                eprintln!(
                    "[A1] {} {}: skipping row — a cell failed",
                    o.d.name(),
                    m.label()
                );
                continue;
            };
            println!(
                "{:<14} {:<9} {:>12} {:>12} {:>12} {:>13}x",
                o.d.name(),
                m.label(),
                nat,
                rnd,
                bfo,
                f(rnd as f64 / nat as f64)
            );
        }
    }
    println!(
        "(expected shape: ordering acts through *balance* as much as locality — random \
         relabeling spreads RMAT/LJ's id-clustered hubs across chunks and can help, while \
         on the mesh it destroys gather locality and hurts; BFS-order on the mesh packs \
         each frontier into one contiguous chunk, serializing it onto few warps)"
    );
}
