//! A4 — read-only cache (texture path) ablation: how much of the
//! baseline's coalescing penalty does the paper-era texture-binding trick
//! recover, and does the warp-centric advantage survive it?
//!
//! The CSR arrays are routed through the device's read-only cache
//! (Fermi-L2-sized by default). Row offsets are re-read every level and
//! cache well; scattered column reads benefit only as far as the working
//! set fits.

use crate::harness::{Cell, Harness};
use crate::util::{banner, built_datasets_par, f, launch_ok, upload_fresh};
use maxwarp::{run_bfs, ExecConfig, Method};
use maxwarp_graph::Scale;

/// Print cycles and DRAM transactions with and without cached graph loads.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "A4",
        "read-only cache: BFS with CSR arrays through the texture/L2 path",
        scale,
    );
    println!(
        "{:<14} {:<9} {:>12} {:>12} {:>8} {:>9} {:>10}",
        "dataset", "method", "uncached", "cached", "gain", "hit-rate", "tx-saved"
    );
    let built = built_datasets_par(scale, h);
    let mut cells = Vec::new();
    for (d, g, src) in &built {
        let src = *src;
        for m in [Method::Baseline, Method::warp(8)] {
            cells.push(Cell::new(
                format!("{} {}", d.name(), m.label()),
                move || {
                    let run_cfg = |cached: bool| {
                        let exec = ExecConfig {
                            cached_graph_loads: cached,
                            ..ExecConfig::default()
                        };
                        let (mut gpu, dg) = upload_fresh(g);
                        launch_ok(run_bfs(&mut gpu, &dg, src, m, &exec))
                    };
                    let plain = run_cfg(false);
                    let cached = run_cfg(true);
                    assert_eq!(plain.levels, cached.levels);
                    let tx_saved = 1.0
                        - cached.run.stats.mem_transactions as f64
                            / plain.run.stats.mem_transactions.max(1) as f64;
                    format!(
                        "{:<14} {:<9} {:>12} {:>12} {:>7}x {:>8.1}% {:>9.1}%",
                        d.name(),
                        m.label(),
                        plain.run.cycles(),
                        cached.run.cycles(),
                        f(plain.run.cycles() as f64 / cached.run.cycles() as f64),
                        cached.run.stats.cache_hit_rate() * 100.0,
                        tx_saved * 100.0,
                    )
                },
            ));
        }
    }
    for row in h.run("A4", cells).into_iter().flatten() {
        println!("{row}");
    }
    println!(
        "(expected shape: row-offset re-reads cache well, so both methods gain; the \
         baseline gains more — texture binding was its standard mitigation — but the \
         warp-centric ordering still wins on heavy-tailed graphs)"
    );
}
