//! SHARD — multi-device sharded execution: identity plus strong scaling.
//!
//! For each dataset and sharded algorithm, runs the single-device driver
//! as the reference, then the N ∈ {1, 2, 4, 8} BSP executor under the
//! default interconnect model. Every sharded payload is asserted
//! byte-identical to the reference (a failed assert drops the cell and
//! fails the run), and the table reports the per-point makespan, the
//! comms share of it, interconnect stalls, halo traffic, BSP rounds, and
//! the scaling efficiency `T1 / (N · TN)`.

use crate::harness::{row, Cell, Harness};
use crate::util::{banner, device, f, fresh_gpu, launch_ok};
use maxwarp::{run_bfs, run_cc, run_pagerank, run_sssp, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{random_weights, Csr, Dataset, Scale};
use maxwarp_shard::{
    run_bfs_sharded, run_cc_sharded, run_pagerank_sharded, run_sssp_sharded, CutStrategy,
    LinkConfig, MultiDevice, Partition, PartitionSpec, ShardedRun,
};

const SHARDS: [u32; 4] = [1, 2, 4, 8];
const PR_ITERS: u32 = 5;
const PR_DAMPING: f32 = 0.85;

/// Merged payload of either integer-valued or rank-valued algorithms,
/// comparable across the single- and multi-device paths.
#[derive(PartialEq)]
pub enum Payload {
    U(Vec<u32>),
    F(Vec<f32>),
}

pub struct Point {
    /// Shard count for this data point.
    pub shards: u32,
    /// Critical-path cycles across the BSP supersteps.
    pub makespan: u64,
    /// Modeled interconnect cycles on the critical path.
    pub comm: u64,
    /// Cycles lost to link arbitration.
    pub stall: u64,
    /// Halo bytes exchanged over the run.
    pub halo: u64,
    /// BSP rounds to convergence.
    pub rounds: u32,
}

impl Point {
    /// Summarize one merged sharded run.
    pub fn from_run(shards: u32, sr: &ShardedRun) -> Point {
        Point {
            shards,
            makespan: sr.makespan_cycles(),
            comm: sr.comm_cycles(),
            stall: sr.stall_cycles(),
            halo: sr.halo_bytes(),
            rounds: sr.bsp_rounds(),
        }
    }
}

/// The algorithm mix per dataset: weighted SSSP only where weights exist;
/// CC runs on the symmetrized graph like the single-device driver.
pub struct Workload {
    /// Dataset name, for table rows.
    pub dataset: &'static str,
    /// Algorithm name (`bfs`/`sssp`/`pagerank`/`cc`).
    pub algo: &'static str,
    /// The graph the drivers run on (symmetrized for CC).
    pub g: Csr,
    /// Edge weights (SSSP only).
    pub weights: Option<Vec<u32>>,
    /// Traversal source.
    pub src: u32,
}

pub fn workloads(scale: Scale) -> Vec<Workload> {
    let mut out = Vec::new();
    for d in [Dataset::Rmat, Dataset::WikiTalkLike] {
        let g = d.build_cached(scale);
        let src = d.source(&g);
        let w = random_weights(&g, 31, 0xd1ce);
        let sym = g.symmetrize();
        out.push(Workload {
            dataset: d.name(),
            algo: "bfs",
            g: g.clone(),
            weights: None,
            src,
        });
        out.push(Workload {
            dataset: d.name(),
            algo: "sssp",
            g: g.clone(),
            weights: Some(w),
            src,
        });
        out.push(Workload {
            dataset: d.name(),
            algo: "pagerank",
            g,
            weights: None,
            src,
        });
        out.push(Workload {
            dataset: d.name(),
            algo: "cc",
            g: sym,
            weights: None,
            src,
        });
    }
    out
}

/// Single-device reference for one workload: payload plus cycle count.
pub fn reference(w: &Workload, method: Method, exec: &ExecConfig) -> (Payload, u64) {
    let mut gpu = fresh_gpu();
    match w.algo {
        "bfs" => {
            let dg = DeviceGraph::upload(&mut gpu, &w.g);
            let o = launch_ok(run_bfs(&mut gpu, &dg, w.src, method, exec));
            (Payload::U(o.levels), o.run.cycles())
        }
        "sssp" => {
            let wts = w.weights.as_deref().unwrap_or(&[]);
            let dg = DeviceGraph::upload_weighted(&mut gpu, &w.g, wts);
            let o = launch_ok(run_sssp(&mut gpu, &dg, w.src, method, exec));
            (Payload::U(o.dist), o.run.cycles())
        }
        "pagerank" => {
            let dg = DeviceGraph::upload(&mut gpu, &w.g);
            let o = launch_ok(run_pagerank(
                &mut gpu, &dg, PR_ITERS, PR_DAMPING, method, exec,
            ));
            (Payload::F(o.ranks), o.run.cycles())
        }
        _ => {
            let dg = DeviceGraph::upload(&mut gpu, &w.g);
            let o = launch_ok(run_cc(&mut gpu, &dg, method, exec));
            (Payload::U(o.labels), o.run.cycles())
        }
    }
}

/// One sharded run for one workload at one shard count and cut.
pub fn sharded_with(
    w: &Workload,
    shards: u32,
    cut: CutStrategy,
    method: Method,
    exec: &ExecConfig,
    link: &LinkConfig,
) -> (Payload, ShardedRun) {
    let spec = PartitionSpec { shards, cut };
    let part = Partition::new(&w.g, w.weights.as_deref(), &spec);
    let mut md = MultiDevice::upload(&device(), part);
    match w.algo {
        "bfs" => {
            let o = launch_ok(run_bfs_sharded(&mut md, w.src, method, exec, link, None));
            (Payload::U(o.values), o.run)
        }
        "sssp" => {
            let o = launch_ok(run_sssp_sharded(&mut md, w.src, method, exec, link, None));
            (Payload::U(o.values), o.run)
        }
        "pagerank" => {
            let o = launch_ok(run_pagerank_sharded(
                &mut md, PR_ITERS, PR_DAMPING, method, exec, link, None,
            ));
            (Payload::F(o.values), o.run)
        }
        _ => {
            let o = launch_ok(run_cc_sharded(&mut md, method, exec, link, None));
            (Payload::U(o.values), o.run)
        }
    }
}

/// [`sharded_with`] under the default block cut and default link — the
/// configuration the SHARD experiment table pins.
pub fn sharded(
    w: &Workload,
    shards: u32,
    method: Method,
    exec: &ExecConfig,
) -> (Payload, ShardedRun) {
    sharded_with(
        w,
        shards,
        CutStrategy::Block,
        method,
        exec,
        &LinkConfig::default(),
    )
}

/// Print the identity-checked scaling table across datasets and shard
/// counts.
pub fn run(scale: Scale, h: &Harness) {
    banner(
        "SHARD",
        "multi-device sharding: identity and strong scaling (block cut)",
        scale,
    );
    let exec = ExecConfig::default();
    let method = Method::warp(8);
    let work = workloads(scale);

    // Stage 1: single-device references, one cell each.
    let ref_cells = work
        .iter()
        .map(|w| {
            Cell::new(format!("{} {} single", w.dataset, w.algo), move || {
                reference(w, method, &exec)
            })
        })
        .collect();
    let refs = h.run("SHARD:single", ref_cells);

    // Stage 2: sharded runs. Each cell borrows its reference and asserts
    // payload identity in place, so a divergence fails the cell (and the
    // process) rather than printing a wrong table.
    let mut cells = Vec::new();
    for (w, reference) in work.iter().zip(&refs) {
        for &n in &SHARDS {
            cells.push(Cell::new(
                format!("{} {} N={n}", w.dataset, w.algo),
                move || {
                    let (payload, sr) = sharded(w, n, method, &exec);
                    if let Some((want, _)) = reference {
                        assert!(
                            payload == *want,
                            "{} {} N={n}: sharded payload diverged",
                            w.dataset,
                            w.algo
                        );
                    }
                    Point::from_run(n, &sr)
                },
            ));
        }
    }
    let outs = h.run("SHARD", cells);

    println!(
        "{:<12} {:<9} {:>3} {:>12} {:>7} {:>10} {:>10} {:>7} {:>6}",
        "dataset", "algo", "N", "makespan", "comm%", "stall-cyc", "halo-B", "rounds", "eff"
    );
    for ((w, reference), chunk) in work.iter().zip(&refs).zip(outs.chunks(SHARDS.len())) {
        let Some(points) = row("SHARD", &format!("{} {}", w.dataset, w.algo), chunk) else {
            continue;
        };
        let Some((_, t1)) = reference else { continue };
        for p in points {
            let comm_pct = 100.0 * p.comm as f64 / p.makespan.max(1) as f64;
            let eff = *t1 as f64 / (p.shards as u64 * p.makespan).max(1) as f64;
            println!(
                "{:<12} {:<9} {:>3} {:>12} {:>6}% {:>10} {:>10} {:>7} {:>6}",
                w.dataset,
                w.algo,
                p.shards,
                p.makespan,
                f(comm_pct),
                p.stall,
                p.halo,
                p.rounds,
                f(eff)
            );
        }
    }
    println!(
        "(identity asserted per cell: every sharded payload is byte-identical to the \
         single-device driver; efficiency = T1 / (N x TN) against the modeled interconnect)"
    );
}
