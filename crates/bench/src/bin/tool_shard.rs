//! `tool_shard` — the multi-device identity sweep and scaling report.
//!
//! Runs every sharded algorithm (BFS, SSSP, PageRank, CC) on the sweep
//! datasets across shard counts and cut strategies, checks each merged
//! payload byte-for-byte against the single-device driver, prints the
//! comms/compute scaling table, and writes a JSON report. Any identity
//! mismatch (or failed cell) exits nonzero — this is the CI gate for the
//! `maxwarp-shard` contract.
//!
//! ```text
//! tool_shard [tiny|small|medium] [--jobs N] [--shards LIST] [--cut block|degree|bfs|all]
//!            [--out PATH]
//! ```
//!
//! Defaults: scale small, shards `1,2,4,8`, all three cuts, report to
//! `results/shard_sweep.json`. The interconnect model reads
//! `MAXWARP_LINK_BW` / `MAXWARP_LINK_LAT` / `MAXWARP_LINK_FANOUT`.

use maxwarp::{ExecConfig, Method};
use maxwarp_bench::experiments::shard::{reference, sharded_with, workloads, Point};
use maxwarp_bench::harness::{exit_code, row, Cell, Harness};
use maxwarp_bench::util::{f, scale_from_args, scale_name, write_results};
use maxwarp_serve::json::{self, Value};
use maxwarp_shard::{CutStrategy, LinkConfig};

struct Args {
    shards: Vec<u32>,
    cuts: Vec<CutStrategy>,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        shards: vec![1, 2, 4, 8],
        cuts: vec![CutStrategy::Block, CutStrategy::Degree, CutStrategy::Bfs],
        out: "shard_sweep.json".to_string(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = || {
            argv.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--shards" => {
                a.shards = val()
                    .split(',')
                    .map(|s| match s.trim().parse::<u32>() {
                        Ok(n) if n >= 1 => n,
                        _ => die(&format!("bad shard count `{s}`")),
                    })
                    .collect();
                if a.shards.is_empty() {
                    die("--shards needs at least one count");
                }
            }
            "--cut" => {
                a.cuts = match val().as_str() {
                    "all" => vec![CutStrategy::Block, CutStrategy::Degree, CutStrategy::Bfs],
                    other => vec![CutStrategy::parse(other)],
                }
            }
            "--out" => a.out = val(),
            "--jobs" => {
                val(); // consumed by Harness::from_env
            }
            other if other.starts_with("--jobs=") => {}
            "tiny" | "small" | "medium" => {} // consumed by scale_from_args
            other => die(&format!("unknown flag {other}")),
        }
    }
    a
}

fn die(msg: &str) -> ! {
    eprintln!("tool_shard: {msg}");
    std::process::exit(2);
}

fn main() {
    let scale = scale_from_args();
    let args = parse_args();
    let h = Harness::from_env();
    let exec = ExecConfig::default();
    let method = Method::warp(8);
    let link = LinkConfig::from_env();

    println!(
        "== tool_shard: identity sweep [scale={}] shards={:?} cuts={:?} \
         link(bw={} B/cyc, lat={} cyc, fanout={}) ==",
        scale_name(scale),
        args.shards,
        args.cuts.iter().map(|c| c.label()).collect::<Vec<_>>(),
        link.bytes_per_cycle,
        link.latency_cycles,
        link.devices_per_link,
    );

    let work = workloads(scale);

    // Single-device references, one cell per (dataset, algo).
    let ref_cells = work
        .iter()
        .map(|w| {
            Cell::new(format!("{} {} single", w.dataset, w.algo), move || {
                reference(w, method, &exec)
            })
        })
        .collect();
    let refs = h.run("tool_shard:single", ref_cells);

    // Sharded runs: (dataset, algo) x cut x N. Each cell carries its own
    // identity verdict so a mismatch is a reported row, not a panic.
    let mut cells = Vec::new();
    for (w, reference) in work.iter().zip(&refs) {
        for &cut in &args.cuts {
            for &n in &args.shards {
                cells.push(Cell::new(
                    format!("{} {} {} N={n}", w.dataset, w.algo, cut.label()),
                    move || {
                        let (payload, sr) = sharded_with(w, n, cut, method, &exec, &link);
                        let matches = reference.as_ref().is_some_and(|(want, _)| payload == *want);
                        (matches, Point::from_run(n, &sr))
                    },
                ));
            }
        }
    }
    let outs = h.run("tool_shard", cells);

    let points_per_row = args.cuts.len() * args.shards.len();
    let mut mismatches = 0usize;
    let mut rows = Vec::new();
    println!(
        "{:<12} {:<9} {:<7} {:>3} {:>12} {:>7} {:>10} {:>10} {:>7} {:>6} {:>6}",
        "dataset",
        "algo",
        "cut",
        "N",
        "makespan",
        "comm%",
        "stall-cyc",
        "halo-B",
        "rounds",
        "eff",
        "ident"
    );
    for ((w, reference), chunk) in work.iter().zip(&refs).zip(outs.chunks(points_per_row)) {
        let Some(points) = row("tool_shard", &format!("{} {}", w.dataset, w.algo), chunk) else {
            mismatches += 1; // a dropped cell is a failed check
            continue;
        };
        let Some((_, t1)) = reference else {
            mismatches += 1;
            continue;
        };
        for (i, (matches, p)) in points.iter().enumerate() {
            let cut = args.cuts[i / args.shards.len()];
            let comm_pct = 100.0 * p.comm as f64 / p.makespan.max(1) as f64;
            let eff = *t1 as f64 / (p.shards as u64 * p.makespan).max(1) as f64;
            if !matches {
                mismatches += 1;
            }
            println!(
                "{:<12} {:<9} {:<7} {:>3} {:>12} {:>6}% {:>10} {:>10} {:>7} {:>6} {:>6}",
                w.dataset,
                w.algo,
                cut.label(),
                p.shards,
                p.makespan,
                f(comm_pct),
                p.stall,
                p.halo,
                p.rounds,
                f(eff),
                if *matches { "ok" } else { "FAIL" }
            );
            rows.push(json::obj(vec![
                ("dataset", json::s(w.dataset.to_string())),
                ("algo", json::s(w.algo.to_string())),
                ("cut", json::s(cut.label().to_string())),
                ("shards", json::n(p.shards as f64)),
                ("single_cycles", json::n(*t1 as f64)),
                ("makespan_cycles", json::n(p.makespan as f64)),
                ("comm_cycles", json::n(p.comm as f64)),
                ("stall_cycles", json::n(p.stall as f64)),
                ("halo_bytes", json::n(p.halo as f64)),
                ("bsp_rounds", json::n(p.rounds as f64)),
                ("efficiency", json::n(eff)),
                ("identical", json::n(if *matches { 1.0 } else { 0.0 })),
            ]));
        }
    }

    let report = json::obj(vec![
        ("scale", json::s(scale_name(scale).to_string())),
        (
            "link",
            json::obj(vec![
                ("bytes_per_cycle", json::n(link.bytes_per_cycle as f64)),
                ("latency_cycles", json::n(link.latency_cycles as f64)),
                ("devices_per_link", json::n(link.devices_per_link as f64)),
            ]),
        ),
        ("mismatches", json::n(mismatches as f64)),
        ("points", Value::Arr(rows)),
    ]);
    let path = write_results(&args.out, &report.to_json());
    println!("report -> {}", path.display());

    if mismatches > 0 {
        eprintln!("tool_shard: {mismatches} identity check(s) FAILED");
        std::process::exit(1);
    }
    std::process::exit(exit_code());
}
