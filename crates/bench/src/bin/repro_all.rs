//! Regenerates every table and figure in one run. Pass `tiny`, `small`
//! (default) or `medium` as the first argument.
use maxwarp_bench::experiments as ex;

fn main() {
    let scale = maxwarp_bench::util::scale_from_args();
    println!(
        "maxwarp reproduction of Hong et al., PPoPP 2011 — all experiments (scale: {})",
        maxwarp_bench::util::scale_name(scale)
    );
    ex::table1::run(scale);
    ex::fig1::run(scale);
    let _ = ex::fig2::run(scale);
    let _ = ex::fig3::run(scale);
    ex::fig4::run(scale);
    ex::fig5::run(scale);
    ex::fig6::run(scale);
    let _ = ex::fig7::run(scale);
    ex::fig8::run(scale);
    ex::ablation1::run(scale);
    ex::ablation2::run(scale);
    ex::ablation3::run(scale);
    ex::ablation4::run(scale);
    ex::ablation5::run(scale);
    ex::ablation6::run(scale);
}
