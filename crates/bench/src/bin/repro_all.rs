//! Regenerates every table and figure in one run. Pass `tiny`, `small`
//! (default) or `medium` as the first argument, and `--jobs N` to fan the
//! experiment cells out over N worker threads (default: available
//! parallelism; the printed tables are byte-identical for any N).
//!
//! Subset selection:
//!   repro_all --list                 print every experiment name + title
//!   repro_all --only fig3            run just F3
//!   repro_all --only fig3,fig4 tiny  comma-separated, combinable with scale
use maxwarp_bench::experiments as ex;
use maxwarp_bench::harness::Harness;

/// Parse `--only a,b` / `--only=a,b` (repeatable) and `--list` out of argv.
/// Returns `(list, only)`; exits with code 2 on an unknown name.
fn parse_selection() -> (bool, Vec<&'static ex::Experiment>) {
    let mut list = false;
    let mut only = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let names = if arg == "--list" {
            list = true;
            continue;
        } else if arg == "--only" {
            args.next().unwrap_or_else(|| {
                eprintln!("--only needs a comma-separated experiment list");
                std::process::exit(2);
            })
        } else if let Some(rest) = arg.strip_prefix("--only=") {
            rest.to_string()
        } else {
            continue;
        };
        for name in names.split(',').filter(|s| !s.is_empty()) {
            match ex::find(name) {
                Some(e) => only.push(e),
                None => {
                    eprintln!("unknown experiment `{name}`; available:");
                    for e in ex::ALL {
                        eprintln!("  {:<10} {}", e.name, e.title);
                    }
                    std::process::exit(2);
                }
            }
        }
    }
    (list, only)
}

fn main() {
    let (list, only) = parse_selection();
    if list {
        for e in ex::ALL {
            println!("{:<10} {}", e.name, e.title);
        }
        return;
    }
    let scale = maxwarp_bench::util::scale_from_args();
    let h = Harness::from_env();
    eprintln!("workers: {}", h.jobs());
    let selected: Vec<_> = if only.is_empty() {
        ex::ALL.iter().collect()
    } else {
        only
    };
    println!(
        "maxwarp reproduction of Hong et al., PPoPP 2011 — {} (scale: {})",
        if selected.len() == ex::ALL.len() {
            "all experiments".to_string()
        } else {
            format!(
                "experiments: {}",
                selected
                    .iter()
                    .map(|e| e.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        },
        maxwarp_bench::util::scale_name(scale)
    );
    for e in &selected {
        (e.run)(scale, &h);
    }
    std::process::exit(maxwarp_bench::harness::exit_code());
}
