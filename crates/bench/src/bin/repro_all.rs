//! Regenerates every table and figure in one run. Pass `tiny`, `small`
//! (default) or `medium` as the first argument, and `--jobs N` to fan the
//! experiment cells out over N worker threads (default: available
//! parallelism; the printed tables are byte-identical for any N).
use maxwarp_bench::experiments as ex;
use maxwarp_bench::harness::Harness;

fn main() {
    let scale = maxwarp_bench::util::scale_from_args();
    let h = Harness::from_env();
    eprintln!("workers: {}", h.jobs());
    println!(
        "maxwarp reproduction of Hong et al., PPoPP 2011 — all experiments (scale: {})",
        maxwarp_bench::util::scale_name(scale)
    );
    ex::table1::run(scale, &h);
    ex::fig1::run(scale, &h);
    let _ = ex::fig2::run(scale, &h);
    let _ = ex::fig3::run(scale, &h);
    ex::fig4::run(scale, &h);
    ex::fig5::run(scale, &h);
    ex::fig6::run(scale, &h);
    let _ = ex::fig7::run(scale, &h);
    ex::fig8::run(scale, &h);
    ex::ablation1::run(scale, &h);
    ex::ablation2::run(scale, &h);
    ex::ablation3::run(scale, &h);
    ex::ablation4::run(scale, &h);
    ex::ablation5::run(scale, &h);
    ex::ablation6::run(scale, &h);
    std::process::exit(maxwarp_bench::harness::exit_code());
}
