//! `tool_profile` — cycle-attribution profile of BFS under the simulator.
//!
//! Runs BFS with the profiler (`GpuConfig::profile`) on, prints the
//! ranked per-site hotspot table with the per-SM stall breakdown, and
//! writes machine-readable artifacts into `results/`:
//!
//! - `profile_<kernel>_<dataset>_<method>.json` — the full report
//!   (sites, per-SM cycle buckets, launches),
//! - `profile_<kernel>_<dataset>_<method>_trace.json` — a Chrome
//!   trace-event timeline (open in `chrome://tracing` / Perfetto) with
//!   one track per SM and one row per warp slot.
//!
//! ```text
//! tool_profile [tiny|small|medium] [--dataset NAME] [--top N]
//! ```

use maxwarp::{run_bfs, DeviceGraph, ExecConfig, Method};
use maxwarp_bench::util::{device, scale_name, write_results};
use maxwarp_graph::{Dataset, Scale};
use maxwarp_simt::Gpu;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: tool_profile [tiny|small|medium] [--dataset NAME] [--top N]");
    exit(2);
}

fn main() {
    let mut scale = Scale::Tiny;
    let mut dataset = Dataset::Rmat;
    let mut top = 12usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "tiny" => scale = Scale::Tiny,
            "small" => scale = Scale::Small,
            "medium" => scale = Scale::Medium,
            "--dataset" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                dataset = *Dataset::ALL
                    .iter()
                    .find(|d| d.name().eq_ignore_ascii_case(name))
                    .unwrap_or_else(|| usage());
            }
            "--top" => {
                i += 1;
                top = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    let g = dataset.build(scale);
    let src = dataset.source(&g);
    let exec = ExecConfig::default();
    let methods = [("baseline", Method::Baseline), ("vw8", Method::warp(8))];

    println!(
        "profiling bfs on {} [{}]: {} vertices, {} edges, source {src}",
        dataset.name(),
        scale_name(scale),
        g.num_vertices(),
        g.num_edges()
    );

    let mut failures = 0u32;
    for (label, method) in methods {
        let mut cfg = device();
        cfg.profile = true;
        let mut gpu = Gpu::new(cfg);
        let dg = DeviceGraph::upload(&mut gpu, &g);
        gpu.set_profile_context(&format!("bfs/{} [{label}]", dataset.name()));
        if let Err(e) = run_bfs(&mut gpu, &dg, src, method, &exec) {
            eprintln!("bfs [{label}]: launch error: {e}; skipping profile");
            failures += 1;
            continue;
        }
        let report = gpu.profile_report().expect("profiler must be on");

        // The stall attribution is an exact partition: per-SM buckets must
        // sum to the total cycle count, or the report is lying.
        assert_eq!(
            report.timing.breakdown_total().total(),
            report.total_cycles * report.timing.sm_breakdown.len() as u64,
            "per-SM stall buckets must partition total cycles"
        );
        for l in &report.launches {
            assert_eq!(
                l.timing.breakdown_total().total(),
                l.cycles * l.timing.sm_breakdown.len() as u64,
                "launch {} buckets must partition its cycles",
                l.index
            );
        }

        println!("{}", report.hotspot_table(top));

        let stem = format!("profile_bfs_{}_{label}", dataset.name());
        let p1 = write_results(&format!("{stem}.json"), &report.to_json());
        let p2 = write_results(&format!("{stem}_trace.json"), &report.chrome_trace());
        println!("wrote {} and {}", p1.display(), p2.display());
    }
    if failures > 0 {
        eprintln!("{failures} method(s) failed to launch");
        exit(1);
    }
}
