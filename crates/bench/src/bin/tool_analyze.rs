//! `tool_analyze` — run every kernel under the static abstract-interpretation
//! analyzer and gate CI on error-severity findings.
//!
//! Sweeps all kernel entry points over a small RMAT graph and a pathological
//! high-degree hub graph with the analyzer (`GpuConfig::analyze`) abstracting
//! every warp-level operation into affine access forms. Prints a per-combo
//! status line, a per-kernel summary table, and writes the machine-readable
//! report to `results/analyze_<device>.json`. Exits nonzero if any
//! *error*-severity finding (definite race, barrier divergence, shared
//! uninitialized read, out-of-bounds, divergent shuffle) was produced;
//! warn-only findings (may-races, coalescing/bank-conflict predictions,
//! redundant ballots) are reported but do not fail the run.
//!
//! ```text
//! tool_analyze [--device fermi|gtx280] [--verbose]
//! ```

use maxwarp::{
    run_betweenness, run_bfs, run_bfs_hybrid, run_bfs_queue, run_cc, run_coloring, run_kcore,
    run_msbfs, run_pagerank, run_spmv, run_sssp, run_triangles, DeviceGraph, ExecConfig,
    GpuHybridConfig, Method, VirtualWarp, WarpCentricOpts,
};
use maxwarp_bench::util::write_results;
use maxwarp_graph::{hub_graph, random_weights, Csr, Dataset, Orientation, Scale};
use maxwarp_simt::{Gpu, GpuConfig, LaunchError, Severity};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::exit;

/// Methods every kernel is analyzed under (deferral added where supported).
fn methods() -> Vec<Method> {
    vec![
        Method::Baseline,
        Method::warp(8),
        Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(32)).with_dynamic()),
    ]
}

/// Deferral variant for the kernels that support outlier deferral.
fn defer_method(g: &Csr) -> Method {
    let mean = (g.num_edges() as f64 / g.num_vertices().max(1) as f64).max(1.0);
    Method::WarpCentric(
        WarpCentricOpts::plain(VirtualWarp::new(8)).with_defer(((mean * 16.0) as u32).max(64)),
    )
}

struct Outcome {
    errors: u64,
    warnings: u64,
    json: String,
}

/// Run one `(kernel, method)` combo on a fresh analyzing device, print its
/// status, and return the counts plus the combo's JSON report. A combo whose
/// launch itself errors is reported and skipped rather than aborting the
/// sweep.
fn check(
    cfg: &GpuConfig,
    verbose: bool,
    label: &str,
    method: Method,
    f: impl FnOnce(&mut Gpu) -> Result<(), LaunchError>,
) -> Result<Outcome, LaunchError> {
    let mut gpu = Gpu::new(cfg.clone());
    let context = format!("{label} [{}]", method.label());
    gpu.set_analyze_context(&context);
    if let Err(e) = f(&mut gpu) {
        println!("FAIL  {context}: launch error: {e}");
        return Err(e);
    }
    let anl = gpu.analyzer().expect("analyzer must be on");
    let out = Outcome {
        errors: anl.error_count(),
        warnings: anl.warning_count(),
        json: anl.to_json(),
    };
    if out.errors > 0 {
        println!(
            "FAIL  {context}: {} error(s), {} warning(s)",
            out.errors, out.warnings
        );
        for d in anl
            .findings()
            .iter()
            .filter(|d| d.severity == Severity::Error)
        {
            println!("{d}");
        }
    } else if out.warnings > 0 {
        println!("warn  {context}: {} warning(s)", out.warnings);
        if verbose {
            print!("{}", anl.report());
        }
    } else {
        println!("ok    {context}");
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut device_name = "fermi";
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--device" => {
                i += 1;
                device_name = match args.get(i).map(String::as_str) {
                    Some("fermi") => "fermi",
                    Some("gtx280") => "gtx280",
                    _ => {
                        eprintln!("usage: tool_analyze [--device fermi|gtx280] [--verbose]");
                        exit(2);
                    }
                };
            }
            "--verbose" | "-v" => verbose = true,
            _ => {
                eprintln!("usage: tool_analyze [--device fermi|gtx280] [--verbose]");
                exit(2);
            }
        }
        i += 1;
    }
    let mut cfg = match device_name {
        "gtx280" => GpuConfig::gtx280(),
        _ => GpuConfig::fermi_c2050(),
    };
    cfg.analyze = true;

    // The sanitizer sweep's graphs: a small scale-free graph and a
    // pathological hub graph that maximizes intra-warp imbalance and the
    // deferral/dynamic code paths.
    let rmat = Dataset::Rmat.build(Scale::Tiny);
    let hub = hub_graph(2048, 4, 1500, 2, 7);
    let graphs: Vec<(&str, &Csr)> = vec![("rmat", &rmat), ("hub", &hub)];

    let mut errors = 0u64;
    let mut warnings = 0u64;
    let mut combos = 0u64;
    let mut failed: Vec<String> = Vec::new();
    // kernel -> (combos, errors, warnings), for the summary table.
    let mut per_kernel: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let mut reports: Vec<(String, String)> = Vec::new();
    let exec = ExecConfig::default();

    for (gname, g) in &graphs {
        let g: &Csr = g;
        let src = (0..g.num_vertices())
            .max_by_key(|&v| g.degree(v))
            .unwrap_or(0);
        let sym = g.symmetrize();
        let rev = g.reverse();
        let weights = random_weights(g, 15, 11);
        let values: Vec<f32> = weights.iter().map(|&w| w as f32).collect();
        let x = vec![1.0f32; g.num_vertices() as usize];
        let bc_sources: Vec<u32> = (0..4.min(g.num_vertices())).collect();
        let ms_sources: Vec<u32> = (0..32.min(g.num_vertices())).collect();

        let mut all_methods = methods();
        all_methods.push(defer_method(g));

        for method in &all_methods {
            let m = *method;
            let deferral = matches!(m, Method::WarpCentric(o) if o.defer_threshold.is_some());
            let dynamic = matches!(m, Method::WarpCentric(o) if o.dynamic);

            let mut run = |kernel: &str, f: &mut dyn FnMut(&mut Gpu) -> Result<(), LaunchError>| {
                combos += 1;
                let slot = per_kernel.entry(kernel.to_string()).or_insert((0, 0, 0));
                slot.0 += 1;
                let combo = format!("{kernel}/{gname} [{}]", m.label());
                match check(&cfg, verbose, &format!("{kernel}/{gname}"), m, |gpu| f(gpu)) {
                    Ok(o) => {
                        errors += o.errors;
                        warnings += o.warnings;
                        slot.1 += o.errors;
                        slot.2 += o.warnings;
                        if o.errors > 0 {
                            failed.push(combo.clone());
                        }
                        reports.push((combo, o.json));
                    }
                    Err(_) => {
                        failed.push(format!("{combo} (launch error)"));
                    }
                }
            };

            run("bfs", &mut |gpu| {
                let dg = DeviceGraph::upload(gpu, g);
                run_bfs(gpu, &dg, src, m, &exec).map(|_| ())
            });
            if !deferral {
                run("bfs_queue", &mut |gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_bfs_queue(gpu, &dg, src, m, &exec).map(|_| ())
                });
            }
            if !deferral {
                run("bfs_hybrid", &mut |gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    let drev = DeviceGraph::upload(gpu, &rev);
                    run_bfs_hybrid(gpu, &dg, &drev, src, m, &exec, &GpuHybridConfig::default())
                        .map(|_| ())
                });
            }
            run("sssp", &mut |gpu| {
                let dg = DeviceGraph::upload_weighted(gpu, g, &weights);
                run_sssp(gpu, &dg, src, m, &exec).map(|_| ())
            });
            run("cc", &mut |gpu| {
                let dg = DeviceGraph::upload(gpu, &sym);
                run_cc(gpu, &dg, m, &exec).map(|_| ())
            });
            run("pagerank", &mut |gpu| {
                let dg = DeviceGraph::upload(gpu, g);
                run_pagerank(gpu, &dg, 5, 0.85, m, &exec).map(|_| ())
            });
            if !deferral {
                run("betweenness", &mut |gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_betweenness(gpu, &dg, &bc_sources, m, &exec).map(|_| ())
                });
                run("triangles", &mut |gpu| {
                    run_triangles(gpu, &sym, m, &exec, Orientation::ByDegree).map(|_| ())
                });
                run("coloring", &mut |gpu| {
                    let dg = DeviceGraph::upload(gpu, &sym);
                    run_coloring(gpu, &dg, m, &exec).map(|_| ())
                });
                run("kcore", &mut |gpu| {
                    let dg = DeviceGraph::upload(gpu, &sym);
                    run_kcore(gpu, &dg, m, &exec).map(|_| ())
                });
                run("msbfs", &mut |gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_msbfs(gpu, &dg, &ms_sources, m, &exec).map(|_| ())
                });
            }
            if !deferral && !dynamic {
                run("spmv", &mut |gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_spmv(gpu, &dg, &values, &x, m, &exec).map(|_| ())
                });
            }
        }
    }

    // Per-kernel summary table.
    println!(
        "\n{:<14} {:>7} {:>8} {:>9}",
        "kernel", "combos", "errors", "warnings"
    );
    for (k, (c, e, w)) in &per_kernel {
        println!("{k:<14} {c:>7} {e:>8} {w:>9}");
    }
    println!(
        "\nanalyze sweep: {combos} kernel/method/graph combos, {errors} error(s), \
         {warnings} warning(s)"
    );

    // Aggregate JSON artifact: each combo's full report nested verbatim
    // (every nested report is itself a complete JSON document).
    let mut json = String::with_capacity(1 << 20);
    let _ = write!(
        json,
        "{{\n\"tool\": \"maxwarp-analyze-sweep\",\n\"device\": \"{device_name}\",\n\
         \"combos\": {combos},\n\"errors\": {errors},\n\"warnings\": {warnings},\n\
         \"reports\": ["
    );
    for (i, (combo, report)) in reports.iter().enumerate() {
        // Combo labels are generated from method/graph names: plain ASCII
        // with no characters needing JSON escapes.
        let _ = write!(
            json,
            "{}{{\"combo\": \"{combo}\", \"report\": {report}}}",
            if i == 0 { "\n" } else { ",\n" }
        );
    }
    json.push_str("\n]\n}\n");
    let path = write_results(&format!("analyze_{device_name}.json"), &json);
    println!("report: {}", path.display());

    if !failed.is_empty() {
        println!("failing combos:");
        for f in &failed {
            println!("  {f}");
        }
        exit(1);
    }
    println!("all combos statically clean");
}
