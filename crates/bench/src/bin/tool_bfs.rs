//! `tool_bfs` — run BFS on your own graph under the simulator.
//!
//! ```text
//! tool_bfs <graph> [--method baseline|vwK|vwK+dyn|vwK+defer] [--src N]
//!          [--device fermi|gtx280] [--cached] [--symmetrize]
//! ```
//!
//! `<graph>` is an edge-list file (`u v` per line, `#` comments), a binary
//! `.mwcsr` file, or a built-in dataset name (`rmat`, `random`,
//! `livejournal`, `patents`, `wikitalk`, `roadnet`, `smallworld`,
//! `regular`, optionally suffixed `:tiny|:small|:medium`).

use maxwarp::{run_bfs, DeviceGraph, ExecConfig, Method, VirtualWarp, WarpCentricOpts};
use maxwarp_graph::{load_csr, read_edge_list, Csr, Dataset, DegreeStats, Scale};
use maxwarp_simt::{Gpu, GpuConfig};
use std::io::BufReader;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: tool_bfs <graph> [--method baseline|vwK[+dyn][+defer]] [--src N]\n\
         \t[--device fermi|gtx280] [--cached] [--symmetrize]\n\
         <graph>: edge-list file, .mwcsr file, or dataset name\n\
         \t(rmat|random|livejournal|patents|wikitalk|roadnet|smallworld|regular)[:tiny|:small|:medium]"
    );
    exit(2);
}

fn load_graph(spec: &str) -> Csr {
    let (name, scale) = match spec.split_once(':') {
        Some((n, "tiny")) => (n, Scale::Tiny),
        Some((n, "small")) => (n, Scale::Small),
        Some((n, "medium")) => (n, Scale::Medium),
        Some(_) => usage(),
        None => (spec, Scale::Small),
    };
    let dataset = match name.to_ascii_lowercase().as_str() {
        "rmat" => Some(Dataset::Rmat),
        "random" => Some(Dataset::Random),
        "livejournal" => Some(Dataset::LiveJournalLike),
        "patents" => Some(Dataset::PatentsLike),
        "wikitalk" => Some(Dataset::WikiTalkLike),
        "roadnet" => Some(Dataset::RoadNet),
        "smallworld" => Some(Dataset::SmallWorld),
        "regular" => Some(Dataset::Regular),
        _ => None,
    };
    if let Some(d) = dataset {
        return d.build(scale);
    }
    let path = std::path::Path::new(spec);
    if !path.exists() {
        eprintln!("error: no such file or dataset: {spec}");
        exit(1);
    }
    if path.extension().is_some_and(|e| e == "mwcsr") {
        load_csr(path).unwrap_or_else(|e| {
            eprintln!("error reading {spec}: {e}");
            exit(1);
        })
    } else {
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("error opening {spec}: {e}");
            exit(1);
        });
        read_edge_list(BufReader::new(f), 0).unwrap_or_else(|e| {
            eprintln!("error parsing {spec}: {e}");
            exit(1);
        })
    }
}

fn parse_method(s: &str, mean_degree: f64) -> Method {
    if s == "baseline" {
        return Method::Baseline;
    }
    let Some(rest) = s.strip_prefix("vw") else {
        usage()
    };
    let mut parts = rest.split('+');
    let k: u32 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .unwrap_or_else(|| usage());
    if !k.is_power_of_two() || k > 32 {
        eprintln!("error: virtual warp size must be a power of two <= 32");
        exit(2);
    }
    let mut opts = WarpCentricOpts::plain(VirtualWarp::new(k));
    for p in parts {
        match p {
            "dyn" => opts = opts.with_dynamic(),
            "defer" => opts = opts.with_defer(((mean_degree * 16.0) as u32).max(64)),
            _ => usage(),
        }
    }
    Method::WarpCentric(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut graph_spec = None;
    let mut method_str = "vw32".to_string();
    let mut src: Option<u32> = None;
    let mut device = GpuConfig::fermi_c2050();
    let mut cached = false;
    let mut symmetrize = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--method" => {
                i += 1;
                method_str = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--src" => {
                i += 1;
                src = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--device" => {
                i += 1;
                device = match args.get(i).map(String::as_str) {
                    Some("fermi") => GpuConfig::fermi_c2050(),
                    Some("gtx280") => GpuConfig::gtx280(),
                    _ => usage(),
                };
            }
            "--cached" => cached = true,
            "--symmetrize" => symmetrize = true,
            a if graph_spec.is_none() && !a.starts_with("--") => graph_spec = Some(a.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let Some(spec) = graph_spec else { usage() };

    let mut g = load_graph(&spec);
    if symmetrize {
        g = g.symmetrize();
    }
    if g.num_vertices() == 0 {
        eprintln!("error: empty graph");
        exit(1);
    }
    let stats = DegreeStats::of(&g);
    let method = parse_method(&method_str, stats.mean);
    let src = src.unwrap_or_else(|| (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap());
    if src >= g.num_vertices() {
        eprintln!("error: source {src} out of range (n={})", g.num_vertices());
        exit(1);
    }

    println!(
        "graph: {} vertices, {} edges | mean degree {:.2}, max {}, cv {:.2}",
        g.num_vertices(),
        g.num_edges(),
        stats.mean,
        stats.max,
        stats.cv
    );
    println!(
        "device: {} | method: {} | source: {src}",
        device.name,
        method.label()
    );

    let clock = device.clock_hz;
    let mut gpu = Gpu::new(device);
    let dg = DeviceGraph::upload(&mut gpu, &g);
    let exec = ExecConfig {
        cached_graph_loads: cached,
        ..ExecConfig::default()
    };
    let out = match run_bfs(&mut gpu, &dg, src, method, &exec) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("launch failed: {e}");
            exit(1);
        }
    };

    let reached = out.levels.iter().filter(|&&l| l != u32::MAX).count();
    let depth = out
        .levels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    let s = &out.run.stats;
    println!(
        "result: reached {reached}/{} vertices, depth {depth}, {} levels run",
        g.num_vertices(),
        out.run.iterations
    );
    println!(
        "cost:   {} cycles ({:.3} ms at {:.2} GHz) | {} instructions | {} DRAM transactions",
        out.run.cycles(),
        out.run.cycles() as f64 / clock as f64 * 1e3,
        clock as f64 / 1e9,
        s.instructions,
        s.mem_transactions
    );
    println!(
        "shape:  lane-util {:.1}% | {:.2} tx/mem-instr | warp imbalance (max/mean) {:.2}{}",
        s.lane_utilization() * 100.0,
        s.tx_per_mem_instruction(),
        s.warp_imbalance_max_over_mean(),
        if cached {
            format!(" | cache hit-rate {:.1}%", s.cache_hit_rate() * 100.0)
        } else {
            String::new()
        }
    );
}
