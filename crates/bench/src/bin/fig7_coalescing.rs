//! Regenerates paper artifact `fig7` — see DESIGN.md's experiment index.
fn main() {
    let scale = maxwarp_bench::util::scale_from_args();
    let _ = maxwarp_bench::experiments::fig7::run(scale);
}
