//! `tool_bench` — the pinned perf-trajectory suite.
//!
//! Runs the four fixed benchmarks from [`maxwarp_bench::bench_suite`]
//! (fig2 sweep wall-clock, serve req/s + latency quantiles, per-kernel
//! simulator throughput, multi-device shard scaling), validates each
//! document against the pinned schema, and writes `BENCH_fig2.json` /
//! `BENCH_serve.json` / `BENCH_simt.json` / `BENCH_shard.json` —
//! committed at the repo root so performance over time is reviewable
//! history.
//!
//! ```text
//! tool_bench [--suite fig2|serve|simt|shard|all] [--scale tiny|small|medium]
//!            [--requests N] [--seed S] [--out-dir DIR]
//!            [--compare DIR] [--tolerance PCT] [--sim-only]
//! ```
//!
//! Defaults: all suites, tiny scale, 120 serve requests, out-dir `.`.
//! With `--compare DIR`, each fresh document is gated against
//! `DIR/BENCH_<suite>.json`; any pinned metric more than `--tolerance`
//! percent (default 10) worse than the baseline exits nonzero.
//! `--sim-only` restricts the gate to deterministic simulated metrics
//! (speedups, cycles, hit rate) — the right mode when the baseline came
//! from different hardware (CI gating against committed snapshots);
//! without it wall-clock metrics (req/s, ops/sec, sweep seconds) are
//! gated too, which only makes sense on the machine that produced the
//! baseline.

use maxwarp_bench::bench_suite::{
    bench_fig2, bench_filename, bench_serve, bench_shard, bench_simt, compare, validate,
    BenchConfig, SUITES,
};
use maxwarp_graph::Scale;
use maxwarp_serve::json::{self, Value};
use std::path::PathBuf;

struct Args {
    suites: Vec<&'static str>,
    cfg: BenchConfig,
    out_dir: PathBuf,
    compare_dir: Option<PathBuf>,
    tolerance: f64,
    sim_only: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        suites: SUITES.to_vec(),
        cfg: BenchConfig::default(),
        out_dir: PathBuf::from("."),
        compare_dir: None,
        tolerance: 10.0,
        sim_only: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = || {
            argv.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--suite" => {
                let v = val();
                a.suites = match v.as_str() {
                    "all" => SUITES.to_vec(),
                    other => match SUITES.iter().find(|s| **s == other) {
                        Some(s) => vec![*s],
                        None => die(&format!("unknown suite {other}")),
                    },
                };
            }
            "--scale" => {
                a.cfg.scale = match val().to_ascii_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => die(&format!("unknown scale {other}")),
                }
            }
            "--requests" => a.cfg.requests = parse(&val(), &flag),
            "--seed" => a.cfg.seed = parse(&val(), &flag),
            "--out-dir" => a.out_dir = PathBuf::from(val()),
            "--compare" => a.compare_dir = Some(PathBuf::from(val())),
            "--tolerance" => a.tolerance = parse(&val(), &flag),
            "--sim-only" => a.sim_only = true,
            other => die(&format!("unknown flag {other}")),
        }
    }
    a
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value {s} for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("tool_bench: {msg}");
    std::process::exit(2);
}

fn load_baseline(dir: &std::path::Path, suite: &str) -> Option<Value> {
    let path = dir.join(bench_filename(suite));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tool_bench: cannot read baseline {}: {e}", path.display());
            return None;
        }
    };
    match json::parse(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("tool_bench: bad baseline {}: {e}", path.display());
            None
        }
    }
}

fn main() {
    let args = parse_args();
    if std::fs::create_dir_all(&args.out_dir).is_err() {
        die(&format!("cannot create {}", args.out_dir.display()));
    }

    let mut regressions: Vec<String> = Vec::new();
    let mut baseline_errors = 0usize;
    for suite in &args.suites {
        println!("== tool_bench: {suite} (scale {:?}) ==", args.cfg.scale);
        let doc = match *suite {
            "fig2" => bench_fig2(&args.cfg),
            "serve" => bench_serve(&args.cfg),
            "shard" => bench_shard(&args.cfg),
            _ => bench_simt(&args.cfg),
        };
        if let Err(e) = validate(suite, &doc) {
            die(&format!(
                "generated {suite} document failed validation: {e}"
            ));
        }
        let path = args.out_dir.join(bench_filename(suite));
        if let Err(e) = std::fs::write(&path, doc.to_json()) {
            die(&format!("cannot write {}: {e}", path.display()));
        }
        println!("wrote {}", path.display());

        if let Some(dir) = &args.compare_dir {
            match load_baseline(dir, suite) {
                Some(base) => {
                    if let Err(e) = validate(suite, &base) {
                        eprintln!("tool_bench: baseline {suite} failed validation: {e}");
                        baseline_errors += 1;
                        continue;
                    }
                    let bad = compare(suite, &doc, &base, args.tolerance, args.sim_only);
                    if bad.is_empty() {
                        println!(
                            "compare vs {}: ok (tolerance {:.1}%{})",
                            dir.display(),
                            args.tolerance,
                            if args.sim_only {
                                ", simulated metrics only"
                            } else {
                                ""
                            }
                        );
                    }
                    for line in bad {
                        println!("REGRESSION {line}");
                        regressions.push(line);
                    }
                }
                None => baseline_errors += 1,
            }
        }
    }

    if !regressions.is_empty() || baseline_errors > 0 {
        eprintln!(
            "tool_bench: {} regression(s), {} unusable baseline(s)",
            regressions.len(),
            baseline_errors
        );
        std::process::exit(1);
    }
}
