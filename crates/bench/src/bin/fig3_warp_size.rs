//! Regenerates paper artifact `fig3` — see DESIGN.md's experiment index.
fn main() {
    let scale = maxwarp_bench::util::scale_from_args();
    let h = maxwarp_bench::harness::Harness::from_env();
    let _ = maxwarp_bench::experiments::fig3::run(scale, &h);
    std::process::exit(maxwarp_bench::harness::exit_code());
}
