//! Regenerates paper artifact `fig3` — see DESIGN.md's experiment index.
fn main() {
    let scale = maxwarp_bench::util::scale_from_args();
    let _ = maxwarp_bench::experiments::fig3::run(scale);
}
