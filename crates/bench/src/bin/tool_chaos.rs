//! `tool_chaos` — deterministic fault-injection sweep over every kernel.
//!
//! For each (kernel, graph, fault class) combo the tool runs the kernel
//! twice on clean devices (asserting the simulator is deterministic), then
//! once more with seeded chaos injection (`GpuConfig::faults`) under
//! generous watchdog budgets, with the whole launch wrapped in
//! `catch_unwind`. Every injected fault must land in one of three bins:
//!
//! - **detected-by-error** — the launch returned a structured fault or
//!   watchdog error (`LaunchError::Fault`),
//! - **detected-by-validation** — the run completed but its functional
//!   output differs from the clean reference,
//! - **tolerated** — the output is byte-identical to the clean run.
//!
//! Violations exit nonzero: a panic escaping a launch (the structured
//! error layer must contain kernel failures), a nondeterministic clean
//! run, or a scheduling perturbation that changes functional output
//! (perturbations are timing-only by construction).
//!
//! ```text
//! tool_chaos [--seed N] [--verbose]
//! ```

use maxwarp::{
    run_betweenness, run_bfs, run_bfs_hybrid, run_bfs_queue, run_cc, run_coloring, run_kcore,
    run_msbfs, run_pagerank, run_spmv, run_sssp, run_triangles, DeviceGraph, ExecConfig,
    GpuHybridConfig, Method,
};
use maxwarp_graph::{hub_graph, random_weights, Csr, Dataset, Orientation, Scale};
use maxwarp_simt::{FaultConfig, Gpu, GpuConfig, LaunchError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::exit;

/// Functional output of one kernel run, flattened to words so every
/// kernel compares the same way (floats by bit pattern: the tolerated
/// class means *byte-identical*, not approximately equal).
type Digest = Vec<u64>;

fn u32s(v: &[u32]) -> Digest {
    v.iter().map(|&x| x as u64).collect()
}

fn f32s(v: &[f32]) -> Digest {
    v.iter().map(|&x| x.to_bits() as u64).collect()
}

/// The three injection classes, swept independently so a detection can be
/// attributed to the fault that caused it.
#[derive(Clone, Copy)]
enum Class {
    BitFlips,
    DroppedAtomics,
    SchedPerturb,
}

impl Class {
    const ALL: [Class; 3] = [Class::BitFlips, Class::DroppedAtomics, Class::SchedPerturb];

    fn name(self) -> &'static str {
        match self {
            Class::BitFlips => "bit-flips",
            Class::DroppedAtomics => "dropped-atomics",
            Class::SchedPerturb => "sched-perturb",
        }
    }

    fn config(self, seed: u64) -> FaultConfig {
        match self {
            Class::BitFlips => FaultConfig::bit_flips(seed),
            Class::DroppedAtomics => FaultConfig::dropped_atomics(seed),
            Class::SchedPerturb => FaultConfig::sched_perturb(seed),
        }
    }
}

/// FNV-1a, to derive a per-combo seed from the label so every combo
/// exercises a different (but reproducible) fault pattern.
fn fnv(base: u64, label: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ base;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Device config for the sweep: generous watchdog budgets so a fault that
/// sends a kernel into a non-converging loop terminates as a structured
/// watchdog error instead of hanging the tool.
fn sweep_cfg(faults: Option<FaultConfig>) -> GpuConfig {
    let mut cfg = GpuConfig::fermi_c2050();
    cfg.watchdog.max_instructions = Some(50_000_000);
    cfg.watchdog.max_cycles = Some(20_000_000_000);
    cfg.faults = faults;
    cfg
}

enum RunResult {
    Ok(Digest),
    Error(String),
    Panic(String),
}

/// One launch on a fresh device, panic-isolated.
fn run_isolated(
    faults: Option<FaultConfig>,
    f: &(dyn Fn(&mut Gpu) -> Result<Digest, LaunchError> + Sync),
) -> RunResult {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut gpu = Gpu::new(sweep_cfg(faults));
        f(&mut gpu)
    }));
    match result {
        Ok(Ok(d)) => RunResult::Ok(d),
        Ok(Err(e)) => RunResult::Error(e.to_string()),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            RunResult::Panic(msg.lines().next().unwrap_or("").to_string())
        }
    }
}

#[derive(Default)]
struct Tally {
    combos: u64,
    detected_error: u64,
    detected_validation: u64,
    tolerated: u64,
    panics: u64,
    sched_mismatches: u64,
    reference_failures: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut base_seed = 0xC0FFEEu64;
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                base_seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: tool_chaos [--seed N] [--verbose]");
                    exit(2);
                });
            }
            "--verbose" | "-v" => verbose = true,
            _ => {
                eprintln!("usage: tool_chaos [--seed N] [--verbose]");
                exit(2);
            }
        }
        i += 1;
    }
    // This tool owns its fault configuration; a leaked MAXWARP_FAULTS from
    // the calling environment would overwrite the per-class configs that
    // `Gpu::new` receives (the env var takes precedence by design).
    std::env::remove_var("MAXWARP_FAULTS");
    std::env::remove_var("MAXWARP_MAX_CYCLES");
    std::env::remove_var("MAXWARP_MAX_ITERS");

    // Same graph pair as tool_sanitize: a small scale-free graph and a
    // pathological hub graph that maximizes intra-warp imbalance.
    let rmat = Dataset::Rmat.build(Scale::Tiny);
    let hub = hub_graph(2048, 4, 1500, 2, 7);
    let graphs: Vec<(&str, &Csr)> = vec![("rmat", &rmat), ("hub", &hub)];

    let m = Method::warp(8);
    let exec = ExecConfig::default();
    let mut tally = Tally::default();

    for (gname, g) in &graphs {
        let g: &Csr = g;
        let src = (0..g.num_vertices())
            .max_by_key(|&v| g.degree(v))
            .unwrap_or(0);
        let sym = g.symmetrize();
        let rev = g.reverse();
        let weights = random_weights(g, 15, 11);
        let values: Vec<f32> = weights.iter().map(|&w| w as f32).collect();
        let x = vec![1.0f32; g.num_vertices() as usize];
        let bc_sources: Vec<u32> = (0..4.min(g.num_vertices())).collect();
        let ms_sources: Vec<u32> = (0..32.min(g.num_vertices())).collect();

        type Runner<'a> = Box<dyn Fn(&mut Gpu) -> Result<Digest, LaunchError> + Sync + 'a>;
        let kernels: Vec<(&str, Runner)> = vec![
            (
                "bfs",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_bfs(gpu, &dg, src, m, &exec).map(|o| u32s(&o.levels))
                }),
            ),
            (
                "bfs_queue",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_bfs_queue(gpu, &dg, src, m, &exec).map(|o| u32s(&o.levels))
                }),
            ),
            (
                "bfs_hybrid",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    let drev = DeviceGraph::upload(gpu, &rev);
                    run_bfs_hybrid(gpu, &dg, &drev, src, m, &exec, &GpuHybridConfig::default())
                        .map(|o| u32s(&o.bfs.levels))
                }),
            ),
            (
                "sssp",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload_weighted(gpu, g, &weights);
                    run_sssp(gpu, &dg, src, m, &exec).map(|o| u32s(&o.dist))
                }),
            ),
            (
                "cc",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, &sym);
                    run_cc(gpu, &dg, m, &exec).map(|o| u32s(&o.labels))
                }),
            ),
            (
                "pagerank",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_pagerank(gpu, &dg, 5, 0.85, m, &exec).map(|o| f32s(&o.ranks))
                }),
            ),
            (
                "betweenness",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_betweenness(gpu, &dg, &bc_sources, m, &exec).map(|o| f32s(&o.bc))
                }),
            ),
            (
                "triangles",
                Box::new(|gpu: &mut Gpu| {
                    run_triangles(gpu, &sym, m, &exec, Orientation::ByDegree).map(|o| vec![o.count])
                }),
            ),
            (
                "coloring",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, &sym);
                    run_coloring(gpu, &dg, m, &exec).map(|o| u32s(&o.colors))
                }),
            ),
            (
                "kcore",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, &sym);
                    run_kcore(gpu, &dg, m, &exec).map(|o| u32s(&o.core))
                }),
            ),
            (
                "msbfs",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_msbfs(gpu, &dg, &ms_sources, m, &exec)
                        .map(|o| o.levels.iter().flat_map(|l| u32s(l)).collect())
                }),
            ),
            (
                "spmv",
                Box::new(|gpu: &mut Gpu| {
                    let dg = DeviceGraph::upload(gpu, g);
                    run_spmv(gpu, &dg, &values, &x, m, &exec).map(|o| f32s(&o.y))
                }),
            ),
        ];

        for (kernel, runner) in &kernels {
            // Clean reference, twice: the simulator must be deterministic
            // with faults off or the comparisons below mean nothing.
            let reference = match (
                run_isolated(None, runner.as_ref()),
                run_isolated(None, runner.as_ref()),
            ) {
                (RunResult::Ok(a), RunResult::Ok(b)) if a == b => a,
                (RunResult::Ok(_), RunResult::Ok(_)) => {
                    println!("FAIL  {kernel}/{gname}: clean runs are nondeterministic");
                    tally.reference_failures += 1;
                    continue;
                }
                (RunResult::Error(e), _) | (_, RunResult::Error(e)) => {
                    println!("FAIL  {kernel}/{gname}: clean run errored: {e}");
                    tally.reference_failures += 1;
                    continue;
                }
                (RunResult::Panic(p), _) | (_, RunResult::Panic(p)) => {
                    println!("FAIL  {kernel}/{gname}: clean run panicked: {p}");
                    tally.reference_failures += 1;
                    tally.panics += 1;
                    continue;
                }
            };

            for class in Class::ALL {
                tally.combos += 1;
                let label = format!("{kernel}/{gname} {}", class.name());
                let seed = fnv(base_seed, &label);
                let sched = matches!(class, Class::SchedPerturb);
                match run_isolated(Some(class.config(seed)), runner.as_ref()) {
                    RunResult::Ok(d) if d == reference => {
                        tally.tolerated += 1;
                        if verbose {
                            println!("ok    {label}: tolerated (output identical)");
                        }
                    }
                    RunResult::Ok(_) if sched => {
                        println!(
                            "FAIL  {label}: scheduling perturbation changed functional output"
                        );
                        tally.sched_mismatches += 1;
                    }
                    RunResult::Ok(_) => {
                        tally.detected_validation += 1;
                        if verbose {
                            println!("ok    {label}: detected by result validation");
                        }
                    }
                    RunResult::Error(e) if sched => {
                        println!("FAIL  {label}: scheduling perturbation errored: {e}");
                        tally.sched_mismatches += 1;
                    }
                    RunResult::Error(e) => {
                        tally.detected_error += 1;
                        if verbose {
                            println!("ok    {label}: detected by structured error: {e}");
                        }
                    }
                    RunResult::Panic(p) => {
                        println!("FAIL  {label}: panic escaped the launch: {p}");
                        tally.panics += 1;
                    }
                }
            }
        }
    }

    println!(
        "\nchaos sweep (seed {base_seed}): {} combos — {} detected by error, {} detected by \
         validation, {} tolerated",
        tally.combos, tally.detected_error, tally.detected_validation, tally.tolerated
    );
    let failures = tally.panics + tally.sched_mismatches + tally.reference_failures;
    if failures > 0 {
        println!(
            "{} violation(s): {} panic escape(s), {} scheduling mismatch(es), {} reference \
             failure(s)",
            failures, tally.panics, tally.sched_mismatches, tally.reference_failures
        );
        exit(1);
    }
    println!("every injected fault was detected or tolerated");
}
