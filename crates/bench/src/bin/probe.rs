//! Quick interactive probe: cycles, lane utilization, and transactions
//! per memory instruction, per method per dataset at a chosen scale. Not
//! part of the paper-figure set; useful for calibration.

use maxwarp::{run_bfs, ExecConfig, Method};
use maxwarp_bench::util::upload_fresh;
use maxwarp_graph::{Dataset, DegreeStats, Scale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        _ => Scale::Tiny,
    };
    let methods = [
        Method::Baseline,
        Method::warp(1),
        Method::warp(2),
        Method::warp(4),
        Method::warp(8),
        Method::warp(16),
        Method::warp(32),
    ];
    println!(
        "{:<14} {:>9} {:>9} {:>6} | {}",
        "dataset",
        "n",
        "m",
        "cv",
        methods
            .iter()
            .map(|m| format!("{:>12}", m.label()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for d in Dataset::ALL {
        let g = d.build(scale);
        let src = d.source(&g);
        let cv = DegreeStats::of(&g).cv;
        let mut cycles = Vec::new();
        let mut lane = Vec::new();
        let mut txm = Vec::new();
        for m in methods {
            let (mut gpu, dg) = upload_fresh(&g);
            let out = match run_bfs(&mut gpu, &dg, src, m, &ExecConfig::default()) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!(
                        "probe: bfs on {} [{}]: launch error: {e}",
                        d.name(),
                        m.label()
                    );
                    std::process::exit(1);
                }
            };
            cycles.push(format!("{:>12}", out.run.cycles()));
            lane.push(format!(
                "{:>11.1}%",
                out.run.stats.lane_utilization() * 100.0
            ));
            txm.push(format!("{:>12.2}", out.run.stats.tx_per_mem_instruction()));
        }
        println!(
            "{:<14} {:>9} {:>9} {:>6.2} | {}",
            d.name(),
            g.num_vertices(),
            g.num_edges(),
            cv,
            cycles.join(" ")
        );
        println!("{:<41} | {}", "  lane-util", lane.join(" "));
        println!("{:<41} | {}", "  tx/mem-instr", txm.join(" "));
    }
}
