//! Quick interactive probe: cycles per method per dataset at a chosen
//! scale. Not part of the paper-figure set; useful for calibration.

use maxwarp::{run_bfs, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{Dataset, DegreeStats, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        _ => Scale::Tiny,
    };
    let methods = [
        Method::Baseline,
        Method::warp(1),
        Method::warp(2),
        Method::warp(4),
        Method::warp(8),
        Method::warp(16),
        Method::warp(32),
    ];
    println!(
        "{:<14} {:>9} {:>9} {:>6} | {}",
        "dataset",
        "n",
        "m",
        "cv",
        methods
            .iter()
            .map(|m| format!("{:>12}", m.label()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for d in Dataset::ALL {
        let g = d.build(scale);
        let src = d.source(&g);
        let cv = DegreeStats::of(&g).cv;
        let mut cells = Vec::new();
        for m in methods {
            let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out = run_bfs(&mut gpu, &dg, src, m, &ExecConfig::default()).unwrap();
            cells.push(format!("{:>12}", out.run.cycles()));
        }
        println!(
            "{:<14} {:>9} {:>9} {:>6.2} | {}",
            d.name(),
            g.num_vertices(),
            g.num_edges(),
            cv,
            cells.join(" ")
        );
    }
}
