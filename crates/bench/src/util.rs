//! Shared harness utilities: scale parsing, fresh-device runs, and table
//! printing.

use crate::harness::{Cell, Harness};
use maxwarp::{run_bfs, BfsOutput, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{Csr, Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig, TimingReport};
use std::path::PathBuf;

/// Parse the experiment scale from argv/env. Priority: first positional
/// CLI arg (`--jobs` and its value are skipped), then `MAXWARP_SCALE`,
/// then the default (`Small` — figures at `Medium` match the paper's
/// shapes best but take minutes).
pub fn scale_from_args() -> Scale {
    let pick = |s: &str| match s.to_ascii_lowercase().as_str() {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "medium" => Some(Scale::Medium),
        _ => None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            args.next(); // its value
            continue;
        }
        if arg.starts_with("--jobs=") {
            continue;
        }
        if let Some(s) = pick(&arg) {
            return s;
        }
    }
    if let Ok(env) = std::env::var("MAXWARP_SCALE") {
        if let Some(s) = pick(&env) {
            return s;
        }
    }
    Scale::Small
}

/// Human name of a scale.
pub fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    }
}

/// The device configuration every figure uses.
pub fn device() -> GpuConfig {
    GpuConfig::fermi_c2050()
}

/// A fresh simulated device with the figure configuration. `Gpu::new`
/// itself honors `MAXWARP_SANITIZE=1` / `MAXWARP_PROFILE=1`, so every
/// tool built on this helper picks up the sanitizer and profiler opt-ins
/// for free.
pub fn fresh_gpu() -> Gpu {
    Gpu::new(device())
}

/// A fresh device with `g` already uploaded — the shared setup every
/// bench tool used to hand-roll.
pub fn upload_fresh(g: &Csr) -> (Gpu, DeviceGraph) {
    let mut gpu = fresh_gpu();
    let dg = DeviceGraph::upload(&mut gpu, g);
    (gpu, dg)
}

/// Unwrap a launch (or other experiment-fatal) result. Experiment cells
/// have no recovery path: any failure invalidates the whole figure.
pub fn launch_ok<T, E: std::fmt::Debug>(r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("experiment launch failed: {e:?}"),
    }
}

/// Run BFS on a fresh device (so each measurement's memory layout is
/// identical and device memory does not accumulate across runs).
pub fn bfs_fresh(g: &Csr, src: u32, method: Method, exec: &ExecConfig) -> BfsOutput {
    bfs_fresh_timed(g, src, method, exec).0
}

/// [`bfs_fresh`] that also returns the device's accumulated timing
/// detail (DRAM utilization, per-SM stall breakdown) for JSON output.
pub fn bfs_fresh_timed(
    g: &Csr,
    src: u32,
    method: Method,
    exec: &ExecConfig,
) -> (BfsOutput, TimingReport) {
    let (mut gpu, dg) = upload_fresh(g);
    let out = launch_ok(run_bfs(&mut gpu, &dg, src, method, exec));
    let timing = gpu.timing_total().clone();
    (out, timing)
}

/// Write `content` to `results/<name>` (creating `results/` if needed)
/// and return the path.
pub fn write_results(name: &str, content: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        panic!("create results dir: {e}");
    }
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        panic!("write results file {}: {e}", path.display());
    }
    path
}

/// Default outlier-deferral threshold for a graph: well above the mean
/// degree so only true outliers defer (the paper defers the heavy tail,
/// not the bulk).
pub fn defer_threshold(g: &Csr) -> u32 {
    ((g.mean_degree() * 16.0) as u32).max(64)
}

/// Print a figure/table header.
pub fn banner(id: &str, title: &str, scale: Scale) {
    println!();
    println!("== {id}: {title} [scale={}] ==", scale_name(scale));
}

/// Format a floating-point cell.
pub fn f(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Useful-edge count for throughput numbers: edges actually traversable
/// from the source (reached vertices' out-edges), the convention TEPS
/// numbers use.
pub fn reachable_edges(g: &Csr, levels: &[u32]) -> u64 {
    (0..g.num_vertices())
        .filter(|&v| levels[v as usize] != u32::MAX)
        .map(|v| g.degree(v) as u64)
        .sum()
}

/// All datasets with their built graphs and sources at a scale. Builds go
/// through the on-disk graph cache (`MAXWARP_GRAPH_CACHE`), so repeated
/// harness runs skip generation.
pub fn built_datasets(scale: Scale) -> Vec<(Dataset, Csr, u32)> {
    Dataset::ALL
        .iter()
        .map(|&d| {
            let g = d.build_cached(scale);
            let src = d.source(&g);
            (d, g, src)
        })
        .collect()
}

/// [`built_datasets`] with the graph generation fanned out over the
/// harness workers (one build cell per dataset).
pub fn built_datasets_par(scale: Scale, h: &Harness) -> Vec<(Dataset, Csr, u32)> {
    build_datasets_subset(scale, h, &Dataset::ALL)
}

/// Build only the named datasets (in the given order) on the harness.
pub fn build_datasets_subset(
    scale: Scale,
    h: &Harness,
    subset: &[Dataset],
) -> Vec<(Dataset, Csr, u32)> {
    let cells = subset
        .iter()
        .map(|&d| {
            Cell::new(format!("build {}", d.name()), move || {
                let g = d.build_cached(scale);
                let src = d.source(&g);
                (d, g, src)
            })
        })
        .collect();
    // A dataset whose build cell failed is dropped entirely: downstream
    // cells are generated from this list, so the remaining datasets stay
    // aligned with their measurement chunks.
    h.run("build", cells).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::Dataset;

    #[test]
    fn scale_names() {
        assert_eq!(scale_name(Scale::Tiny), "tiny");
        assert_eq!(scale_name(Scale::Small), "small");
        assert_eq!(scale_name(Scale::Medium), "medium");
    }

    #[test]
    fn defer_threshold_tracks_mean_degree() {
        let sparse = maxwarp_graph::grid2d(20, 20);
        assert_eq!(defer_threshold(&sparse), 64, "floor applies");
        let dense = maxwarp_graph::regular_graph(256, 32, 1);
        assert_eq!(defer_threshold(&dense), 32 * 16);
    }

    #[test]
    fn built_datasets_covers_all() {
        let built = built_datasets(Scale::Tiny);
        assert_eq!(built.len(), Dataset::ALL.len());
        for (d, g, src) in built {
            assert!(src < g.num_vertices(), "{}", d.name());
        }
    }

    #[test]
    fn float_formatting_buckets() {
        assert_eq!(f(512.3), "512");
        assert_eq!(f(51.23), "51.2");
        assert_eq!(f(5.123), "5.12");
    }

    #[test]
    fn reachable_edges_counts_only_reached() {
        let g = maxwarp_graph::Csr::from_edges(4, &[(0, 1), (1, 2), (3, 0)]);
        // Vertex 3 unreachable from 0.
        let levels = vec![0, 1, 2, u32::MAX];
        assert_eq!(reachable_edges(&g, &levels), 2);
    }

    #[test]
    fn bfs_fresh_timed_reports_device_cycles() {
        let g = Dataset::Regular.build(Scale::Tiny);
        let (out, timing) = bfs_fresh_timed(
            &g,
            0,
            maxwarp::Method::Baseline,
            &maxwarp::ExecConfig::default(),
        );
        // The accumulated timing covers every launch of the run, so its
        // cycle sum matches the run's cycle count and its utilization
        // metrics are well-formed.
        assert_eq!(timing.cycles, out.run.cycles());
        assert!(timing.dram_utilization() > 0.0);
        assert!(timing.sm_imbalance() >= 1.0);
        assert_eq!(
            timing.breakdown_total().total(),
            timing.cycles * timing.sm_breakdown.len() as u64
        );
    }

    #[test]
    fn bfs_fresh_is_deterministic() {
        let g = Dataset::Regular.build(Scale::Tiny);
        let a = bfs_fresh(
            &g,
            0,
            maxwarp::Method::warp(8),
            &maxwarp::ExecConfig::default(),
        );
        let b = bfs_fresh(
            &g,
            0,
            maxwarp::Method::warp(8),
            &maxwarp::ExecConfig::default(),
        );
        assert_eq!(a.run.cycles(), b.run.cycles());
        assert_eq!(a.levels, b.levels);
    }
}
