//! The pinned perf-trajectory suite behind `tool_bench`.
//!
//! Four fixed benchmarks, each emitting a schema-validated JSON document
//! meant to be committed at the repo root (`BENCH_fig2.json`,
//! `BENCH_serve.json`, `BENCH_simt.json`, `BENCH_shard.json`) so the
//! repo's performance over time is diffable history, not folklore:
//!
//! * **fig2** — wall-clock of the headline BFS speedup sweep plus the
//!   simulated geomean speedup itself (a *result* regression gate, not
//!   just a speed one).
//! * **serve** — an in-process zipf load against the query service:
//!   req/s, bucketed latency quantiles from the server's own metrics
//!   registry, cache hit rate, and the measured overhead of that registry
//!   (enabled-vs-disabled throughput delta). A second, deliberately
//!   overloaded pass against a resilience-armed server records shed,
//!   retry, and degraded rates (availability telemetry, never gated).
//! * **simt** — per-kernel simulator throughput: host-side ops/sec
//!   (simulated warp instructions per wall second) and the deterministic
//!   simulated cycle counts for a pinned RMAT graph.
//! * **shard** — multi-device strong scaling on a pinned RMAT graph: per
//!   algorithm, the single-device cycle count and the N ∈ {2, 4, 8}
//!   sharded makespans with their comms/compute/stall breakdown, plus the
//!   geomean scaling efficiency `T1 / (N · TN)` at each shard count —
//!   all simulated, all deterministic, all gated. Payload identity
//!   against the single-device drivers is asserted on every point.
//!
//! [`compare`] gates a fresh run against a committed baseline: any pinned
//! metric that moves in the bad direction by more than the tolerance is a
//! regression. Simulated metrics (cycles, speedups, hit rate) are
//! deterministic; wall-clock metrics are noisy, so CI runs with a generous
//! tolerance while local runs can tighten it.

use crate::harness::Harness;
use crate::util::{device, fresh_gpu, launch_ok, scale_name};
use maxwarp::DeviceGraph;
use maxwarp::{geomean, run_bfs, run_cc, run_pagerank, run_sssp, ExecConfig, Method};
use maxwarp_graph::{random_weights, Csr, Dataset, Scale};
use maxwarp_serve::json::{self, Value};
use maxwarp_serve::{
    Algo, ChaosConfig, LatencySummary, Query, Request, RetryPolicy, ServeError, Server,
    ServerConfig, ShedConfig, Ticket,
};
use maxwarp_shard::{
    run_bfs_sharded, run_cc_sharded, run_pagerank_sharded, run_sssp_sharded, CutStrategy,
    LinkConfig, MultiDevice, Partition, PartitionSpec, ShardedRun,
};
use maxwarp_simt::GpuConfig;
use std::time::Instant;

/// Version stamped into every BENCH document; bump on shape changes so
/// `--compare` refuses to diff incompatible snapshots.
pub const SCHEMA_VERSION: u64 = 1;

/// Suite names, in run order.
pub const SUITES: [&str; 4] = ["fig2", "serve", "simt", "shard"];

/// Pinned configuration for one suite run.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Graph scale (tiny for CI, small/medium for real trend points).
    pub scale: Scale,
    /// Timed requests in the serve load (per registry mode).
    pub requests: usize,
    /// Stream seed for the serve load.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: Scale::Tiny,
            requests: 120,
            seed: 1,
        }
    }
}

/// `BENCH_<suite>.json` — the committed snapshot filename for a suite.
pub fn bench_filename(suite: &str) -> String {
    format!("BENCH_{suite}.json")
}

fn common_header(suite: &str, cfg: &BenchConfig, wall_seconds: f64) -> Vec<(&'static str, Value)> {
    vec![
        ("suite", json::s(suite.to_string())),
        ("schema_version", json::n(SCHEMA_VERSION as f64)),
        ("scale", json::s(scale_name(cfg.scale))),
        ("wall_seconds", json::n(wall_seconds)),
    ]
}

// ---- fig2 ------------------------------------------------------------------

/// Run the headline fig2 sweep once and report wall-clock plus the
/// simulated speedups (dataset rows and overall geomean).
pub fn bench_fig2(cfg: &BenchConfig) -> Value {
    let h = Harness::from_env();
    let start = Instant::now();
    let rows = crate::experiments::fig2::run(cfg.scale, &h);
    let wall = start.elapsed().as_secs_f64();
    let speedups: Vec<f64> = rows.iter().map(|&(_, _, s)| s).collect();
    let mut doc = common_header("fig2", cfg, wall);
    doc.push(("geomean_speedup", json::n(geomean(&speedups))));
    doc.push((
        "rows",
        Value::Arr(
            rows.into_iter()
                .map(|(dataset, best_k, speedup)| {
                    json::obj(vec![
                        ("dataset", json::s(dataset)),
                        ("best_k", json::n(best_k as f64)),
                        ("speedup", json::n(speedup)),
                    ])
                })
                .collect(),
        ),
    ));
    json::obj(doc)
}

// ---- serve -----------------------------------------------------------------

/// SplitMix64 — the same minimal stream RNG `serve_loadgen` uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf sampler over ranks `0..n`: P(rank) ∝ 1/(rank+1)^theta.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    fn draw(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

struct LoadRun {
    throughput_rps: f64,
    completed: u64,
    hit_rate: f64,
    service: LatencySummary,
    per_algo: Vec<(String, LatencySummary)>,
}

fn serve_catalog(server: &Server, scale: Scale) -> Vec<(maxwarp_serve::GraphHandle, Query)> {
    let datasets = [Dataset::Rmat, Dataset::Random];
    let algos = [Algo::Bfs, Algo::Sssp, Algo::Pagerank, Algo::Cc];
    let mut catalog = Vec::new();
    for d in datasets {
        let h = server.register_graph(d.name(), d.build_cached(scale));
        let n = match server.graph(h) {
            Some(e) => e.csr.num_vertices(),
            None => continue,
        };
        for algo in algos {
            for variant in 0..2u32 {
                let src = (variant > 0).then_some((variant * 97) % n.max(1));
                let query = match algo {
                    Algo::Bfs => Query::Bfs { src },
                    Algo::Sssp => Query::Sssp { src },
                    Algo::Pagerank => Query::Pagerank {
                        iters: 3 + variant,
                        damping: 0.85,
                    },
                    _ => Query::Cc,
                };
                catalog.push((h, query));
            }
        }
    }
    catalog.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    catalog
}

fn submit_with_retry(server: &Server, req: Request) -> Option<Ticket> {
    loop {
        match server.submit(req.clone()) {
            Ok(t) => return Some(t),
            Err(ServeError::QueueFull { .. }) => {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            Err(_) => return None,
        }
    }
}

/// One timed zipf load against a fresh server with the metrics registry
/// `obs` on or off. A full warmup pass over the catalog runs first so both
/// modes are measured against a hot cache and a settled tuner.
fn run_load(cfg: &BenchConfig, obs: bool) -> LoadRun {
    let mut sc = ServerConfig::for_tests(GpuConfig::fermi_c2050());
    sc.obs = obs;
    sc.trace = false;
    sc.tuning_path = None;
    let server = Server::start(sc);
    let catalog = serve_catalog(&server, cfg.scale);
    assert!(!catalog.is_empty(), "serve catalog must not be empty");

    // Warmup: every distinct query once, off the clock.
    let warm: Vec<Ticket> = catalog
        .iter()
        .filter_map(|(h, q)| submit_with_retry(&server, Request::new(*h, q.clone())))
        .collect();
    for t in warm {
        let _ = t.wait();
    }
    let warm_snap = server.snapshot();

    let mut rng = Rng(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let zipf = Zipf::new(catalog.len(), 1.1);
    let start = Instant::now();
    let tickets: Vec<Ticket> = (0..cfg.requests)
        .filter_map(|_| {
            let (h, q) = &catalog[zipf.draw(&mut rng)];
            submit_with_retry(&server, Request::new(*h, q.clone()))
        })
        .collect();
    let mut completed = 0u64;
    for t in tickets {
        if t.wait().is_ok() {
            completed += 1;
        }
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let service = server
        .registry()
        .histograms_of("serve_service_us")
        .into_iter()
        .next()
        .map(|(_, h)| LatencySummary::from_hist(&h))
        .unwrap_or_default();
    let per_algo: Vec<(String, LatencySummary)> = server
        .registry()
        .histograms_of("serve_algo_service_us")
        .into_iter()
        .filter(|(_, h)| h.count > 0)
        .filter_map(|(labels, h)| {
            labels
                .into_iter()
                .next()
                .map(|(_, v)| (v, LatencySummary::from_hist(&h)))
        })
        .collect();
    let snap = server.snapshot();
    // Hit rate over the timed window only (warmup lookups excluded).
    let hits = snap.cache.hits - warm_snap.cache.hits;
    let lookups = hits + (snap.cache.misses - warm_snap.cache.misses);
    server.shutdown();
    LoadRun {
        throughput_rps: completed as f64 / wall,
        completed,
        hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
        service,
        per_algo,
    }
}

/// One deliberately overloaded pass against a resilience-armed server:
/// small queue, admission control with rotating tenants, retries over a
/// seeded launch-fault trickle, and a 1 ms stale TTL so warm entries are
/// served stale-while-revalidate. Records shed/retry/degraded rates —
/// availability telemetry for the trajectory, recorded but never gated
/// (the rates are policy outcomes, not perf).
fn run_overload(cfg: &BenchConfig) -> Value {
    let mut sc = ServerConfig::for_tests(GpuConfig::fermi_c2050());
    sc.workers = 2;
    sc.queue_capacity = 16;
    sc.tuning_path = None;
    sc.resilience.shed = Some(ShedConfig {
        high_watermark: 0.75,
        tenant_rate: 100.0,
        tenant_burst: 8.0,
    });
    sc.resilience.retry = RetryPolicy::attempts(3);
    sc.resilience.stale_ttl = Some(std::time::Duration::from_millis(1));
    sc.chaos = Some(ChaosConfig {
        seed: cfg.seed,
        launch_fault: 0.15,
        ..ChaosConfig::default()
    });
    let server = Server::start(sc);
    let catalog = serve_catalog(&server, cfg.scale);

    // Warm every entry (stubbornly: shed warmups just retry), then let the
    // cache go stale behind the 1 ms TTL.
    let warm: Vec<Ticket> = catalog
        .iter()
        .filter_map(|(h, q)| {
            let req = Request::new(*h, q.clone());
            loop {
                match server.submit(req.clone()) {
                    Ok(t) => return Some(t),
                    Err(ServeError::QueueFull { .. }) | Err(ServeError::Shed { .. }) => {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    Err(_) => return None,
                }
            }
        })
        .collect();
    for t in warm {
        let _ = t.wait();
    }
    // Counters accumulated while stubbornly warming (shed warmups retried
    // until admitted) are not part of the timed window.
    let warm_res = server.snapshot().resilience;
    std::thread::sleep(std::time::Duration::from_millis(2));

    let mut rng = Rng(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let zipf = Zipf::new(catalog.len(), 1.1);
    let tenants = ["alpha", "bravo", "charlie", "delta"];
    let attempted = cfg.requests as u64;
    let (h0, _) = catalog[0];
    let n0 = server.graph(h0).map_or(1, |e| e.csr.num_vertices().max(1));
    let mut tickets = Vec::new();
    let mut rejected_full = 0u64;
    for i in 0..cfg.requests {
        // Every third request is a fresh cache-missing BFS so the retry
        // path (device execution under the fault trickle) gets exercised;
        // the rest replay the warm zipf catalog and go stale-while-
        // revalidate.
        let mut req = if i % 3 == 0 {
            let src = (i as u32).wrapping_mul(131) % n0;
            Request::new(h0, Query::Bfs { src: Some(src) })
        } else {
            let (h, q) = &catalog[zipf.draw(&mut rng)];
            Request::new(*h, q.clone())
        };
        req.tenant = Some(tenants[i % tenants.len()].to_string());
        match server.submit(req) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull { .. }) => rejected_full += 1,
            Err(_) => {} // sheds are read back from the snapshot counters
        }
    }
    let mut completed = 0u64;
    let mut failed = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_) => completed += 1,
            Err(ServeError::Shed { .. }) => {} // evicted victim, counted below
            Err(_) => failed += 1,
        }
    }
    let snap = server.snapshot();
    server.shutdown();
    let res = &snap.resilience;
    let sheds = (res.shed_tenant - warm_res.shed_tenant) + (res.shed_queue - warm_res.shed_queue);
    let retries = res.retries - warm_res.retries;
    let degraded = res.degraded - warm_res.degraded;
    let denom = attempted.max(1) as f64;
    json::obj(vec![
        ("attempted", json::n(attempted as f64)),
        ("completed", json::n(completed as f64)),
        ("failed", json::n(failed as f64)),
        ("rejected_full", json::n(rejected_full as f64)),
        ("shed", json::n(sheds as f64)),
        ("retries", json::n(retries as f64)),
        ("degraded", json::n(degraded as f64)),
        ("shed_rate", json::n(sheds as f64 / denom)),
        ("retry_rate", json::n(retries as f64 / denom)),
        (
            "degraded_rate",
            json::n(if completed > 0 {
                degraded as f64 / completed as f64
            } else {
                0.0
            }),
        ),
    ])
}

/// The serve benchmark: alternating registry-on / registry-off loads, best
/// throughput per mode, and the observability overhead that implies.
pub fn bench_serve(cfg: &BenchConfig) -> Value {
    const RUNS_PER_MODE: usize = 2;
    let start = Instant::now();
    let mut on_runs = Vec::new();
    let mut off_best = 0.0f64;
    for _ in 0..RUNS_PER_MODE {
        on_runs.push(run_load(cfg, true));
        off_best = off_best.max(run_load(cfg, false).throughput_rps);
    }
    let overload = run_overload(cfg);
    let wall = start.elapsed().as_secs_f64();
    let Some(best) = on_runs
        .into_iter()
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
    else {
        unreachable!("RUNS_PER_MODE > 0");
    };
    // Positive = the registry costs throughput; ~0 (or negative noise) is
    // the target. The <5% acceptance bound lives in the compare gate and
    // the committed snapshot, not an assert — a loaded CI box can spike it.
    let overhead_pct = if off_best > 0.0 {
        (off_best - best.throughput_rps) / off_best * 100.0
    } else {
        0.0
    };
    let mut doc = common_header("serve", cfg, wall);
    doc.push(("requests", json::n(cfg.requests as f64)));
    doc.push(("seed", json::n(cfg.seed as f64)));
    doc.push(("completed", json::n(best.completed as f64)));
    doc.push(("throughput_rps", json::n(best.throughput_rps)));
    doc.push(("throughput_rps_obs_off", json::n(off_best)));
    doc.push(("obs_overhead_pct", json::n(overhead_pct)));
    doc.push(("hit_rate", json::n(best.hit_rate)));
    doc.push(("latency", best.service.to_json()));
    doc.push((
        "per_algo",
        Value::Obj(
            best.per_algo
                .iter()
                .map(|(algo, s)| (algo.clone(), s.to_json()))
                .collect(),
        ),
    ));
    doc.push(("overload", overload));
    json::obj(doc)
}

// ---- simt ------------------------------------------------------------------

/// The per-kernel simulator throughput benchmark: a pinned RMAT graph, one
/// row per kernel, best-of-3 wall time. `cycles`/`instructions` are
/// simulated (deterministic across hosts); `ops_per_sec` is host speed.
pub fn bench_simt(cfg: &BenchConfig) -> Value {
    const REPS: usize = 3;
    let start = Instant::now();
    let g = Dataset::Rmat.build_cached(cfg.scale);
    let src = Dataset::Rmat.source(&g);
    let weights = random_weights(&g, 15, 0xbe9c);
    let exec = ExecConfig::default();

    type KernelFn<'a> = Box<dyn Fn() -> maxwarp::AlgoRun + 'a>;
    let kernels: Vec<(&str, KernelFn<'_>)> = vec![
        (
            "bfs_baseline",
            Box::new(|| {
                let (mut gpu, dg) = upload_plain(&g);
                launch_ok(run_bfs(&mut gpu, &dg, src, Method::Baseline, &exec)).run
            }),
        ),
        (
            "bfs_vw8",
            Box::new(|| {
                let (mut gpu, dg) = upload_plain(&g);
                launch_ok(run_bfs(&mut gpu, &dg, src, Method::warp(8), &exec)).run
            }),
        ),
        (
            "sssp_vw8",
            Box::new(|| {
                let mut gpu = fresh_gpu();
                let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &weights);
                launch_ok(run_sssp(&mut gpu, &dg, src, Method::warp(8), &exec)).run
            }),
        ),
        (
            "pagerank_vw8",
            Box::new(|| {
                let (mut gpu, dg) = upload_plain(&g);
                launch_ok(run_pagerank(&mut gpu, &dg, 5, 0.85, Method::warp(8), &exec)).run
            }),
        ),
        (
            "cc_vw8",
            Box::new(|| {
                let (mut gpu, dg) = upload_plain(&g);
                launch_ok(run_cc(&mut gpu, &dg, Method::warp(8), &exec)).run
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, f) in &kernels {
        let mut best_wall = f64::INFINITY;
        let mut run = None;
        for _ in 0..REPS {
            let t = Instant::now();
            let r = f();
            best_wall = best_wall.min(t.elapsed().as_secs_f64());
            run = Some(r);
        }
        let Some(run) = run else {
            unreachable!("REPS > 0");
        };
        let ops = run.stats.instructions;
        rows.push(json::obj(vec![
            ("kernel", json::s(name.to_string())),
            ("cycles", json::n(run.stats.cycles as f64)),
            ("instructions", json::n(ops as f64)),
            ("iterations", json::n(run.iterations as f64)),
            ("wall_seconds", json::n(best_wall)),
            ("ops_per_sec", json::n(ops as f64 / best_wall.max(1e-9))),
        ]));
    }
    let wall = start.elapsed().as_secs_f64();
    let mut doc = common_header("simt", cfg, wall);
    doc.push(("graph", json::s("rmat")));
    doc.push(("vertices", json::n(g.num_vertices() as f64)));
    doc.push(("edges", json::n(g.num_edges() as f64)));
    doc.push(("kernels", Value::Arr(rows)));
    json::obj(doc)
}

fn upload_plain(g: &Csr) -> (maxwarp_simt::Gpu, DeviceGraph) {
    let mut gpu = fresh_gpu();
    let dg = DeviceGraph::upload(&mut gpu, g);
    (gpu, dg)
}

// ---- shard -----------------------------------------------------------------

/// Shard counts the scaling suite pins (beyond the single-device T1).
const SHARD_POINTS: [u32; 3] = [2, 4, 8];

/// One sharded data point: the JSON row plus the scaling efficiency
/// `T1 / (N · TN)` it contributes to the suite-level geomean.
fn shard_point(shards: u32, sr: &ShardedRun, t1: u64) -> (f64, Value) {
    let efficiency = t1 as f64 / (shards as u64 * sr.makespan_cycles()).max(1) as f64;
    let rounds: Vec<Value> = sr
        .rounds
        .iter()
        .map(|r| {
            json::obj(vec![
                ("compute_cycles", json::n(r.compute_cycles as f64)),
                ("comm_cycles", json::n(r.comm_cycles as f64)),
                ("stall_cycles", json::n(r.stall_cycles as f64)),
                ("halo_bytes", json::n(r.halo_bytes as f64)),
            ])
        })
        .collect();
    let row = json::obj(vec![
        ("shards", json::n(shards as f64)),
        ("makespan_cycles", json::n(sr.makespan_cycles() as f64)),
        ("compute_cycles", json::n(sr.compute_cycles() as f64)),
        ("comm_cycles", json::n(sr.comm_cycles() as f64)),
        ("stall_cycles", json::n(sr.stall_cycles() as f64)),
        ("halo_bytes", json::n(sr.halo_bytes() as f64)),
        ("bsp_rounds", json::n(sr.bsp_rounds() as f64)),
        ("efficiency", json::n(efficiency)),
        ("rounds", Value::Arr(rounds)),
    ]);
    (efficiency, row)
}

/// The multi-device scaling benchmark: every sharded algorithm on a
/// pinned RMAT graph, block cut, default interconnect. All metrics are
/// simulated cycles — deterministic across hosts — so the per-point
/// makespans and the efficiency geomeans gate tightly in CI. Payload
/// identity against the single-device drivers is asserted inline.
pub fn bench_shard(cfg: &BenchConfig) -> Value {
    let start = Instant::now();
    let g = Dataset::Rmat.build_cached(cfg.scale);
    let src = Dataset::Rmat.source(&g);
    let weights = random_weights(&g, 15, 0xbe9c);
    let sym = g.symmetrize();
    let exec = ExecConfig::default();
    let link = LinkConfig::default();
    let method = Method::warp(8);

    let fleet = |graph: &Csr, w: Option<&[u32]>, shards: u32| {
        let spec = PartitionSpec {
            shards,
            cut: CutStrategy::Block,
        };
        MultiDevice::upload(&device(), Partition::new(graph, w, &spec))
    };

    let mut algo_rows = Vec::new();
    let mut eff_by_n: Vec<Vec<f64>> = vec![Vec::new(); SHARD_POINTS.len()];
    let mut push_algo = |name: &str, t1: u64, points: Vec<Value>| {
        algo_rows.push(json::obj(vec![
            ("algo", json::s(name.to_string())),
            ("single_cycles", json::n(t1 as f64)),
            ("points", Value::Arr(points)),
        ]));
    };

    // BFS
    {
        let (want, t1) = {
            let (mut gpu, dg) = upload_plain(&g);
            let o = launch_ok(run_bfs(&mut gpu, &dg, src, method, &exec));
            (o.levels, o.run.cycles())
        };
        let mut points = Vec::new();
        for (i, &n) in SHARD_POINTS.iter().enumerate() {
            let mut md = fleet(&g, None, n);
            let out = launch_ok(run_bfs_sharded(&mut md, src, method, &exec, &link, None));
            assert_eq!(out.values, want, "bfs payload identity at N={n}");
            let (eff, row) = shard_point(n, &out.run, t1);
            eff_by_n[i].push(eff);
            points.push(row);
        }
        push_algo("bfs", t1, points);
    }
    // SSSP
    {
        let (want, t1) = {
            let mut gpu = fresh_gpu();
            let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &weights);
            let o = launch_ok(run_sssp(&mut gpu, &dg, src, method, &exec));
            (o.dist, o.run.cycles())
        };
        let mut points = Vec::new();
        for (i, &n) in SHARD_POINTS.iter().enumerate() {
            let mut md = fleet(&g, Some(&weights), n);
            let out = launch_ok(run_sssp_sharded(&mut md, src, method, &exec, &link, None));
            assert_eq!(out.values, want, "sssp payload identity at N={n}");
            let (eff, row) = shard_point(n, &out.run, t1);
            eff_by_n[i].push(eff);
            points.push(row);
        }
        push_algo("sssp", t1, points);
    }
    // PageRank
    {
        const ITERS: u32 = 5;
        let (want, t1) = {
            let (mut gpu, dg) = upload_plain(&g);
            let o = launch_ok(run_pagerank(&mut gpu, &dg, ITERS, 0.85, method, &exec));
            (o.ranks, o.run.cycles())
        };
        let mut points = Vec::new();
        for (i, &n) in SHARD_POINTS.iter().enumerate() {
            let mut md = fleet(&g, None, n);
            let out = launch_ok(run_pagerank_sharded(
                &mut md, ITERS, 0.85, method, &exec, &link, None,
            ));
            assert_eq!(out.values, want, "pagerank payload identity at N={n}");
            let (eff, row) = shard_point(n, &out.run, t1);
            eff_by_n[i].push(eff);
            points.push(row);
        }
        push_algo("pagerank", t1, points);
    }
    // CC (on the symmetrized graph, matching the single-device driver).
    {
        let (want, t1) = {
            let (mut gpu, dg) = upload_plain(&sym);
            let o = launch_ok(run_cc(&mut gpu, &dg, method, &exec));
            (o.labels, o.run.cycles())
        };
        let mut points = Vec::new();
        for (i, &n) in SHARD_POINTS.iter().enumerate() {
            let mut md = fleet(&sym, None, n);
            let out = launch_ok(run_cc_sharded(&mut md, method, &exec, &link, None));
            assert_eq!(out.values, want, "cc payload identity at N={n}");
            let (eff, row) = shard_point(n, &out.run, t1);
            eff_by_n[i].push(eff);
            points.push(row);
        }
        push_algo("cc", t1, points);
    }

    let wall = start.elapsed().as_secs_f64();
    let mut doc = common_header("shard", cfg, wall);
    doc.push(("graph", json::s("rmat")));
    doc.push(("vertices", json::n(g.num_vertices() as f64)));
    doc.push(("edges", json::n(g.num_edges() as f64)));
    doc.push(("cut", json::s("block")));
    doc.push(("method", json::s("vw8")));
    doc.push((
        "link",
        json::obj(vec![
            ("bytes_per_cycle", json::n(link.bytes_per_cycle as f64)),
            ("latency_cycles", json::n(link.latency_cycles as f64)),
            ("devices_per_link", json::n(link.devices_per_link as f64)),
        ]),
    ));
    for (i, &n) in SHARD_POINTS.iter().enumerate() {
        let key = match n {
            2 => "efficiency_n2",
            4 => "efficiency_n4",
            _ => "efficiency_n8",
        };
        doc.push((key, json::n(geomean(&eff_by_n[i]))));
    }
    doc.push(("algos", Value::Arr(algo_rows)));
    json::obj(doc)
}

// ---- schema validation -----------------------------------------------------

fn want_num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn want_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn want_latency(v: &Value, key: &str) -> Result<(), String> {
    let lat = v.get(key).ok_or_else(|| format!("missing field `{key}`"))?;
    for q in ["count", "p50_us", "p95_us", "p99_us", "mean_us", "max_us"] {
        want_num(lat, q).map_err(|e| format!("{key}: {e}"))?;
    }
    Ok(())
}

/// Check a BENCH document against the pinned schema for `suite`.
pub fn validate(suite: &str, v: &Value) -> Result<(), String> {
    let got = want_str(v, "suite")?;
    if got != suite {
        return Err(format!("suite mismatch: expected `{suite}`, got `{got}`"));
    }
    let version = want_num(v, "schema_version")? as u64;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    want_str(v, "scale")?;
    let wall = want_num(v, "wall_seconds")?;
    if wall <= 0.0 {
        return Err("wall_seconds must be positive".into());
    }
    match suite {
        "fig2" => {
            let gm = want_num(v, "geomean_speedup")?;
            if gm <= 0.0 {
                return Err("geomean_speedup must be positive".into());
            }
            let rows = v
                .get("rows")
                .and_then(Value::as_arr)
                .ok_or("missing array field `rows`")?;
            if rows.is_empty() {
                return Err("rows must be non-empty".into());
            }
            for row in rows {
                want_str(row, "dataset")?;
                want_num(row, "best_k")?;
                if want_num(row, "speedup")? <= 0.0 {
                    return Err("row speedup must be positive".into());
                }
            }
        }
        "serve" => {
            let requests = want_num(v, "requests")?;
            let completed = want_num(v, "completed")?;
            if completed <= 0.0 || completed > requests {
                return Err("completed must be in 1..=requests".into());
            }
            if want_num(v, "throughput_rps")? <= 0.0 {
                return Err("throughput_rps must be positive".into());
            }
            want_num(v, "throughput_rps_obs_off")?;
            want_num(v, "obs_overhead_pct")?;
            let hit = want_num(v, "hit_rate")?;
            if !(0.0..=1.0).contains(&hit) {
                return Err("hit_rate must be in [0,1]".into());
            }
            want_latency(v, "latency")?;
            let per_algo = v
                .get("per_algo")
                .and_then(Value::as_obj)
                .ok_or("missing object field `per_algo`")?;
            if per_algo.is_empty() {
                return Err("per_algo must be non-empty".into());
            }
            let ov = v.get("overload").ok_or("missing object field `overload`")?;
            for key in [
                "attempted",
                "completed",
                "failed",
                "shed",
                "retries",
                "degraded",
                "retry_rate",
            ] {
                want_num(ov, key).map_err(|e| format!("overload: {e}"))?;
            }
            for key in ["shed_rate", "degraded_rate"] {
                let rate = want_num(ov, key).map_err(|e| format!("overload: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("overload {key} must be in [0,1]"));
                }
            }
        }
        "simt" => {
            want_str(v, "graph")?;
            want_num(v, "vertices")?;
            want_num(v, "edges")?;
            let kernels = v
                .get("kernels")
                .and_then(Value::as_arr)
                .ok_or("missing array field `kernels`")?;
            if kernels.is_empty() {
                return Err("kernels must be non-empty".into());
            }
            for k in kernels {
                want_str(k, "kernel")?;
                want_num(k, "cycles")?;
                want_num(k, "instructions")?;
                want_num(k, "wall_seconds")?;
                if want_num(k, "ops_per_sec")? <= 0.0 {
                    return Err("kernel ops_per_sec must be positive".into());
                }
            }
        }
        "shard" => {
            want_str(v, "graph")?;
            want_num(v, "vertices")?;
            want_num(v, "edges")?;
            want_str(v, "cut")?;
            for key in ["efficiency_n2", "efficiency_n4", "efficiency_n8"] {
                if want_num(v, key)? <= 0.0 {
                    return Err(format!("{key} must be positive"));
                }
            }
            let algos = v
                .get("algos")
                .and_then(Value::as_arr)
                .ok_or("missing array field `algos`")?;
            if algos.is_empty() {
                return Err("algos must be non-empty".into());
            }
            for a in algos {
                want_str(a, "algo")?;
                if want_num(a, "single_cycles")? <= 0.0 {
                    return Err("single_cycles must be positive".into());
                }
                let points = a
                    .get("points")
                    .and_then(Value::as_arr)
                    .ok_or("missing array field `points`")?;
                if points.is_empty() {
                    return Err("points must be non-empty".into());
                }
                for p in points {
                    for key in [
                        "shards",
                        "compute_cycles",
                        "comm_cycles",
                        "stall_cycles",
                        "halo_bytes",
                        "bsp_rounds",
                    ] {
                        want_num(p, key)?;
                    }
                    if want_num(p, "makespan_cycles")? <= 0.0 {
                        return Err("point makespan_cycles must be positive".into());
                    }
                    if want_num(p, "efficiency")? <= 0.0 {
                        return Err("point efficiency must be positive".into());
                    }
                    let rounds = p
                        .get("rounds")
                        .and_then(Value::as_arr)
                        .ok_or("missing array field `rounds`")?;
                    if rounds.is_empty() {
                        return Err("point rounds must be non-empty".into());
                    }
                    for r in rounds {
                        for key in [
                            "compute_cycles",
                            "comm_cycles",
                            "stall_cycles",
                            "halo_bytes",
                        ] {
                            want_num(r, key).map_err(|e| format!("round: {e}"))?;
                        }
                    }
                }
            }
        }
        other => return Err(format!("unknown suite `{other}`")),
    }
    Ok(())
}

// ---- baseline comparison ---------------------------------------------------

/// One gated metric: where it lives, which direction is good, and whether
/// it is a deterministic simulated quantity (safe to gate tightly across
/// machines) or host wall-clock (only comparable on the same box).
struct Metric {
    label: String,
    current: f64,
    baseline: f64,
    higher_is_better: bool,
    deterministic: bool,
}

impl Metric {
    /// Percent change in the *bad* direction (0 when equal or improved).
    fn regression_pct(&self) -> f64 {
        if self.baseline.abs() < 1e-12 {
            return 0.0;
        }
        let delta = if self.higher_is_better {
            (self.baseline - self.current) / self.baseline
        } else {
            (self.current - self.baseline) / self.baseline
        };
        (delta * 100.0).max(0.0)
    }
}

fn paired(
    cur: &Value,
    base: &Value,
    key: &str,
    label: &str,
    higher_is_better: bool,
    deterministic: bool,
    out: &mut Vec<Metric>,
) {
    if let (Some(c), Some(b)) = (
        cur.get(key).and_then(Value::as_f64),
        base.get(key).and_then(Value::as_f64),
    ) {
        out.push(Metric {
            label: label.to_string(),
            current: c,
            baseline: b,
            higher_is_better,
            deterministic,
        });
    }
}

fn gated_metrics(suite: &str, cur: &Value, base: &Value) -> Vec<Metric> {
    let mut m = Vec::new();
    match suite {
        "fig2" => {
            paired(
                cur,
                base,
                "geomean_speedup",
                "fig2 geomean_speedup",
                true,
                true,
                &mut m,
            );
            paired(
                cur,
                base,
                "wall_seconds",
                "fig2 wall_seconds",
                false,
                false,
                &mut m,
            );
        }
        "serve" => {
            paired(
                cur,
                base,
                "throughput_rps",
                "serve throughput_rps",
                true,
                false,
                &mut m,
            );
            paired(cur, base, "hit_rate", "serve hit_rate", true, true, &mut m);
        }
        "simt" => {
            let empty = Vec::new();
            let cur_kernels = cur.get("kernels").and_then(Value::as_arr).unwrap_or(&empty);
            let base_kernels = base
                .get("kernels")
                .and_then(Value::as_arr)
                .unwrap_or(&empty);
            for ck in cur_kernels {
                let Some(name) = ck.get("kernel").and_then(Value::as_str) else {
                    continue;
                };
                let Some(bk) = base_kernels
                    .iter()
                    .find(|bk| bk.get("kernel").and_then(Value::as_str) == Some(name))
                else {
                    continue;
                };
                paired(
                    ck,
                    bk,
                    "ops_per_sec",
                    &format!("simt {name} ops_per_sec"),
                    true,
                    false,
                    &mut m,
                );
                paired(
                    ck,
                    bk,
                    "cycles",
                    &format!("simt {name} cycles"),
                    false,
                    true,
                    &mut m,
                );
            }
        }
        "shard" => {
            // Scaling efficiency and every per-point makespan are pure
            // simulated quantities — tight cross-machine gates.
            for key in ["efficiency_n2", "efficiency_n4", "efficiency_n8"] {
                paired(cur, base, key, &format!("shard {key}"), true, true, &mut m);
            }
            paired(
                cur,
                base,
                "wall_seconds",
                "shard wall_seconds",
                false,
                false,
                &mut m,
            );
            let empty = Vec::new();
            let cur_algos = cur.get("algos").and_then(Value::as_arr).unwrap_or(&empty);
            let base_algos = base.get("algos").and_then(Value::as_arr).unwrap_or(&empty);
            for ca in cur_algos {
                let Some(name) = ca.get("algo").and_then(Value::as_str) else {
                    continue;
                };
                let Some(ba) = base_algos
                    .iter()
                    .find(|ba| ba.get("algo").and_then(Value::as_str) == Some(name))
                else {
                    continue;
                };
                paired(
                    ca,
                    ba,
                    "single_cycles",
                    &format!("shard {name} single_cycles"),
                    false,
                    true,
                    &mut m,
                );
                let cur_points = ca.get("points").and_then(Value::as_arr).unwrap_or(&empty);
                let base_points = ba.get("points").and_then(Value::as_arr).unwrap_or(&empty);
                for cp in cur_points {
                    let Some(n) = cp.get("shards").and_then(Value::as_f64) else {
                        continue;
                    };
                    let Some(bp) = base_points
                        .iter()
                        .find(|bp| bp.get("shards").and_then(Value::as_f64) == Some(n))
                    else {
                        continue;
                    };
                    paired(
                        cp,
                        bp,
                        "makespan_cycles",
                        &format!("shard {name} N={n} makespan_cycles"),
                        false,
                        true,
                        &mut m,
                    );
                }
            }
        }
        _ => {}
    }
    m
}

/// Compare a fresh run against a committed baseline of the same suite.
/// Returns one human-readable line per metric that regressed by more than
/// `tolerance_pct`; empty means the gate passes. With `sim_only`, only
/// deterministic simulated metrics (speedups, cycles, hit rate) are gated
/// — the mode for CI, where the baseline was produced on different
/// hardware and wall-clock numbers are incomparable.
pub fn compare(
    suite: &str,
    current: &Value,
    baseline: &Value,
    tolerance_pct: f64,
    sim_only: bool,
) -> Vec<String> {
    gated_metrics(suite, current, baseline)
        .into_iter()
        .filter(|m| !sim_only || m.deterministic)
        .filter(|m| m.regression_pct() > tolerance_pct)
        .map(|m| {
            format!(
                "{}: {:.3} -> {:.3} ({:.1}% worse, tolerance {:.1}%)",
                m.label,
                m.baseline,
                m.current,
                m.regression_pct(),
                tolerance_pct
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pairs: Vec<(&str, Value)>) -> Value {
        json::obj(pairs)
    }

    fn serve_doc(rps: f64, hit: f64) -> Value {
        doc(vec![
            ("suite", json::s("serve")),
            ("schema_version", json::n(SCHEMA_VERSION as f64)),
            ("scale", json::s("tiny")),
            ("wall_seconds", json::n(1.0)),
            ("requests", json::n(10.0)),
            ("seed", json::n(1.0)),
            ("completed", json::n(10.0)),
            ("throughput_rps", json::n(rps)),
            ("throughput_rps_obs_off", json::n(rps)),
            ("obs_overhead_pct", json::n(0.0)),
            ("hit_rate", json::n(hit)),
            (
                "latency",
                doc(vec![
                    ("count", json::n(10.0)),
                    ("p50_us", json::n(5.0)),
                    ("p95_us", json::n(9.0)),
                    ("p99_us", json::n(9.0)),
                    ("mean_us", json::n(6.0)),
                    ("max_us", json::n(9.0)),
                ]),
            ),
            (
                "per_algo",
                Value::Obj([("bfs".to_string(), json::n(1.0))].into_iter().collect()),
            ),
            (
                "overload",
                doc(vec![
                    ("attempted", json::n(10.0)),
                    ("completed", json::n(8.0)),
                    ("failed", json::n(0.0)),
                    ("shed", json::n(2.0)),
                    ("retries", json::n(1.0)),
                    ("degraded", json::n(3.0)),
                    ("shed_rate", json::n(0.2)),
                    ("retry_rate", json::n(0.1)),
                    ("degraded_rate", json::n(0.375)),
                ]),
            ),
        ])
    }

    #[test]
    fn validate_accepts_wellformed_serve_doc() {
        assert_eq!(validate("serve", &serve_doc(100.0, 0.5)), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_fields_and_bad_ranges() {
        let mut v = serve_doc(100.0, 1.5);
        assert!(validate("serve", &v).is_err(), "hit_rate out of range");
        v = serve_doc(0.0, 0.5);
        assert!(validate("serve", &v).is_err(), "zero throughput");
        assert!(
            validate("fig2", &serve_doc(1.0, 0.5)).is_err(),
            "suite mismatch"
        );
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let base = serve_doc(100.0, 0.5);
        // 5% slower: inside a 10% gate, outside a 2% gate.
        let cur = serve_doc(95.0, 0.5);
        assert!(compare("serve", &cur, &base, 10.0, false).is_empty());
        assert_eq!(compare("serve", &cur, &base, 2.0, false).len(), 1);
        // Improvements never trip the gate.
        let faster = serve_doc(200.0, 0.9);
        assert!(compare("serve", &faster, &base, 0.0, false).is_empty());
        // sim_only skips throughput (wall-clock) but still gates hit_rate.
        assert!(compare("serve", &cur, &base, 2.0, true).is_empty());
        let cold_cache = serve_doc(95.0, 0.2);
        assert_eq!(compare("serve", &cold_cache, &base, 2.0, true).len(), 1);
    }

    fn shard_doc(eff: f64, makespan: f64) -> Value {
        let point = doc(vec![
            ("shards", json::n(2.0)),
            ("makespan_cycles", json::n(makespan)),
            ("compute_cycles", json::n(makespan * 0.8)),
            ("comm_cycles", json::n(makespan * 0.2)),
            ("stall_cycles", json::n(10.0)),
            ("halo_bytes", json::n(4096.0)),
            ("bsp_rounds", json::n(6.0)),
            ("efficiency", json::n(eff)),
            (
                "rounds",
                Value::Arr(vec![doc(vec![
                    ("compute_cycles", json::n(makespan * 0.8)),
                    ("comm_cycles", json::n(makespan * 0.2)),
                    ("stall_cycles", json::n(10.0)),
                    ("halo_bytes", json::n(4096.0)),
                ])]),
            ),
        ]);
        doc(vec![
            ("suite", json::s("shard")),
            ("schema_version", json::n(SCHEMA_VERSION as f64)),
            ("scale", json::s("tiny")),
            ("wall_seconds", json::n(1.0)),
            ("graph", json::s("rmat")),
            ("vertices", json::n(1024.0)),
            ("edges", json::n(8192.0)),
            ("cut", json::s("block")),
            ("efficiency_n2", json::n(eff)),
            ("efficiency_n4", json::n(eff)),
            ("efficiency_n8", json::n(eff)),
            (
                "algos",
                Value::Arr(vec![doc(vec![
                    ("algo", json::s("bfs")),
                    ("single_cycles", json::n(1000.0)),
                    ("points", Value::Arr(vec![point])),
                ])]),
            ),
        ])
    }

    #[test]
    fn validate_accepts_wellformed_shard_doc() {
        assert_eq!(validate("shard", &shard_doc(0.7, 700.0)), Ok(()));
        let bad = shard_doc(0.0, 700.0);
        assert!(validate("shard", &bad).is_err(), "zero efficiency");
    }

    #[test]
    fn compare_gates_shard_efficiency_and_makespan() {
        let base = shard_doc(0.8, 700.0);
        // Efficiency dropped 25% and the makespan grew: both deterministic,
        // both gated even in sim_only mode.
        let reg = compare("shard", &shard_doc(0.6, 900.0), &base, 10.0, true);
        assert!(reg.iter().any(|l| l.contains("efficiency_n2")), "{reg:?}");
        assert!(reg.iter().any(|l| l.contains("makespan_cycles")), "{reg:?}");
        assert!(compare("shard", &shard_doc(0.8, 700.0), &base, 10.0, true).is_empty());
    }

    #[test]
    fn compare_matches_simt_kernels_by_name() {
        let mk = |cycles: f64, ops: f64| {
            doc(vec![
                ("suite", json::s("simt")),
                (
                    "kernels",
                    Value::Arr(vec![doc(vec![
                        ("kernel", json::s("bfs_vw8")),
                        ("cycles", json::n(cycles)),
                        ("ops_per_sec", json::n(ops)),
                    ])]),
                ),
            ])
        };
        // Simulated cycles regressed 50%: deterministic, trips even the
        // cross-machine sim_only gate.
        let reg = compare("simt", &mk(150.0, 1000.0), &mk(100.0, 1000.0), 10.0, true);
        assert_eq!(reg.len(), 1);
        assert!(reg[0].contains("cycles"));
        assert!(compare("simt", &mk(100.0, 1000.0), &mk(100.0, 1000.0), 10.0, false).is_empty());
        // Host throughput regressions only gate when wall metrics are on.
        let slow_host = compare("simt", &mk(100.0, 500.0), &mk(100.0, 1000.0), 10.0, false);
        assert_eq!(slow_host.len(), 1);
        assert!(compare("simt", &mk(100.0, 500.0), &mk(100.0, 1000.0), 10.0, true).is_empty());
    }
}
