//! Method selection: which kernel family and which of the paper's
//! techniques to apply.

use crate::vwarp::VirtualWarp;
use maxwarp_simt::TaskSchedule;

/// Options of the virtual warp-centric method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarpCentricOpts {
    /// Virtual warp size K.
    pub vw: VirtualWarp,
    /// Use dynamic workload distribution (warps fetch vertex chunks from an
    /// atomic counter) instead of static partitioning.
    pub dynamic: bool,
    /// Defer vertices with degree ≥ this threshold to a global outlier
    /// queue processed by whole blocks in a second kernel.
    pub defer_threshold: Option<u32>,
}

impl WarpCentricOpts {
    /// Plain virtual warp-centric execution with static partitioning.
    pub fn plain(vw: VirtualWarp) -> Self {
        WarpCentricOpts {
            vw,
            dynamic: false,
            defer_threshold: None,
        }
    }

    /// Enable dynamic workload distribution.
    pub fn with_dynamic(mut self) -> Self {
        self.dynamic = true;
        self
    }

    /// Enable outlier deferral at the given degree threshold.
    pub fn with_defer(mut self, threshold: u32) -> Self {
        self.defer_threshold = Some(threshold);
        self
    }

    pub(crate) fn schedule(&self) -> TaskSchedule {
        if self.dynamic {
            TaskSchedule::Dynamic
        } else {
            TaskSchedule::StaticBlocked
        }
    }
}

/// Which implementation runs an algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Thread-per-vertex — the conventional CUDA graph kernel the paper
    /// uses as its GPU baseline.
    Baseline,
    /// The paper's virtual warp-centric method.
    WarpCentric(WarpCentricOpts),
}

impl Method {
    /// Warp-centric with the given K and no extra techniques.
    pub fn warp(k: u32) -> Method {
        Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(k)))
    }

    /// Short label for tables ("baseline", "vw8", "vw32+dyn+defer", ...).
    pub fn label(&self) -> String {
        match self {
            Method::Baseline => "baseline".to_string(),
            Method::WarpCentric(o) => {
                let mut s = o.vw.to_string();
                if o.dynamic {
                    s.push_str("+dyn");
                }
                if o.defer_threshold.is_some() {
                    s.push_str("+defer");
                }
                s
            }
        }
    }
}

/// Execution geometry shared by all drivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Threads per block (multiple of 32).
    pub block_threads: u32,
    /// Vertices per work chunk in warp-task mode (static chunks and
    /// dynamic fetches use the same granularity).
    pub chunk_vertices: u32,
    /// Route the read-only CSR arrays (row offsets, column indices)
    /// through the device's read-only cache — the texture-binding trick of
    /// paper-era kernels. Honored by the BFS kernels (ablation A4).
    pub cached_graph_loads: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            block_threads: 256,
            // Small chunks give the dynamic distributor real granularity to
            // balance; each chunk pays one atomic fetch in dynamic mode.
            chunk_vertices: 16,
            cached_graph_loads: false,
        }
    }
}

impl ExecConfig {
    /// Resident grid size that fills the device for persistent warp-task
    /// kernels.
    pub fn resident_grid(&self, cfg: &maxwarp_simt::GpuConfig) -> u32 {
        (cfg.num_sms * cfg.blocks_per_sm(self.block_threads, 0)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Method::Baseline.label(), "baseline");
        assert_eq!(Method::warp(8).label(), "vw8");
        let full = Method::WarpCentric(
            WarpCentricOpts::plain(VirtualWarp::new(32))
                .with_dynamic()
                .with_defer(1024),
        );
        assert_eq!(full.label(), "vw32+dyn+defer");
    }

    #[test]
    fn schedule_mapping() {
        assert_eq!(
            WarpCentricOpts::plain(VirtualWarp::new(4)).schedule(),
            TaskSchedule::StaticBlocked
        );
        assert_eq!(
            WarpCentricOpts::plain(VirtualWarp::new(4))
                .with_dynamic()
                .schedule(),
            TaskSchedule::Dynamic
        );
    }

    #[test]
    fn resident_grid_fills_device() {
        let cfg = maxwarp_simt::GpuConfig::fermi_c2050();
        let e = ExecConfig::default();
        // 256-thread blocks: 6 blocks/SM x 14 SMs.
        assert_eq!(e.resident_grid(&cfg), 84);
    }
}
