//! Method selection: which kernel family and which of the paper's
//! techniques to apply.

use crate::vwarp::VirtualWarp;
use maxwarp_simt::TaskSchedule;

/// Options of the virtual warp-centric method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarpCentricOpts {
    /// Virtual warp size K.
    pub vw: VirtualWarp,
    /// Use dynamic workload distribution (warps fetch vertex chunks from an
    /// atomic counter) instead of static partitioning.
    pub dynamic: bool,
    /// Defer vertices with degree ≥ this threshold to a global outlier
    /// queue processed by whole blocks in a second kernel.
    pub defer_threshold: Option<u32>,
}

impl WarpCentricOpts {
    /// Plain virtual warp-centric execution with static partitioning.
    pub fn plain(vw: VirtualWarp) -> Self {
        WarpCentricOpts {
            vw,
            dynamic: false,
            defer_threshold: None,
        }
    }

    /// Enable dynamic workload distribution.
    pub fn with_dynamic(mut self) -> Self {
        self.dynamic = true;
        self
    }

    /// Enable outlier deferral at the given degree threshold.
    pub fn with_defer(mut self, threshold: u32) -> Self {
        self.defer_threshold = Some(threshold);
        self
    }

    pub(crate) fn schedule(&self) -> TaskSchedule {
        if self.dynamic {
            TaskSchedule::Dynamic
        } else {
            TaskSchedule::StaticBlocked
        }
    }
}

/// Which implementation runs an algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Thread-per-vertex — the conventional CUDA graph kernel the paper
    /// uses as its GPU baseline.
    Baseline,
    /// The paper's virtual warp-centric method.
    WarpCentric(WarpCentricOpts),
}

impl Method {
    /// Warp-centric with the given K and no extra techniques.
    pub fn warp(k: u32) -> Method {
        Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(k)))
    }

    /// Unambiguous round-trippable form: like [`label`](Method::label) but
    /// deferral carries its threshold (`vw8+defer:512`). This is what the
    /// tuning table persists and what `MAXWARP_METHOD` accepts.
    pub fn spec(&self) -> String {
        match self {
            Method::Baseline => "baseline".to_string(),
            Method::WarpCentric(o) => {
                let mut s = o.vw.to_string();
                if o.dynamic {
                    s.push_str("+dyn");
                }
                if let Some(t) = o.defer_threshold {
                    s.push_str(&format!("+defer:{t}"));
                }
                s
            }
        }
    }

    /// Parse a method spec: `baseline`, `vwK`, with optional `+dyn` and
    /// `+defer:N` (or bare `+defer`, threshold 64) suffixes in any order.
    /// Accepts everything [`spec`](Method::spec) emits plus the
    /// threshold-less [`label`](Method::label) form.
    pub fn parse(s: &str) -> Option<Method> {
        let s = s.trim();
        if s == "baseline" {
            return Some(Method::Baseline);
        }
        let mut parts = s.split('+');
        let head = parts.next()?;
        let k: u32 = head.strip_prefix("vw")?.parse().ok()?;
        if !(k.is_power_of_two() && k <= 32) {
            return None;
        }
        let mut opts = WarpCentricOpts::plain(VirtualWarp::new(k));
        for p in parts {
            if p == "dyn" {
                opts.dynamic = true;
            } else if p == "defer" {
                opts.defer_threshold = Some(64);
            } else if let Some(t) = p.strip_prefix("defer:") {
                opts.defer_threshold = Some(t.parse().ok()?);
            } else {
                return None;
            }
        }
        Some(Method::WarpCentric(opts))
    }

    /// Short label for tables ("baseline", "vw8", "vw32+dyn+defer", ...).
    pub fn label(&self) -> String {
        match self {
            Method::Baseline => "baseline".to_string(),
            Method::WarpCentric(o) => {
                let mut s = o.vw.to_string();
                if o.dynamic {
                    s.push_str("+dyn");
                }
                if o.defer_threshold.is_some() {
                    s.push_str("+defer");
                }
                s
            }
        }
    }
}

/// The canonical method-candidate table. One definition serves every
/// consumer that used to hand-roll its own list: the figure/ablation
/// experiments and the serving layer's online autotuner all sweep the same
/// candidates, so "best method" means the same thing everywhere.
pub mod table {
    use super::*;

    /// The full candidate set the autotuner probes on first sight of a
    /// `(graph, algorithm)` pair: the GPU baseline, the paper's virtual-warp
    /// sizes, plus its two refinements (outlier deferral at `defer_threshold`
    /// and dynamic workload distribution).
    pub fn candidates(defer_threshold: u32) -> Vec<Method> {
        vec![
            Method::Baseline,
            Method::warp(4),
            Method::warp(8),
            Method::warp(16),
            Method::warp(32),
            Method::WarpCentric(
                WarpCentricOpts::plain(VirtualWarp::new(8)).with_defer(defer_threshold),
            ),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(32)).with_dynamic()),
        ]
    }

    /// The Fig. 3 sweep: baseline plus every legal virtual warp size. The
    /// fig3 experiment and the fig3-vs-autotuner acceptance check both use
    /// exactly this list.
    pub fn k_sweep() -> Vec<Method> {
        let mut v = vec![Method::Baseline];
        v.extend(VirtualWarp::ALL.iter().map(|vw| Method::warp(vw.k())));
        v
    }

    /// The three-way comparison used by the per-algorithm tables (F6, A5):
    /// baseline vs a mid K vs the full-warp K.
    pub fn comparison_trio() -> [(&'static str, Method); 3] {
        [
            ("baseline", Method::Baseline),
            ("vw8", Method::warp(8)),
            ("vw32", Method::warp(32)),
        ]
    }

    /// The Fig. 4 technique ladder at one K: static partitioning, then each
    /// refinement alone, then both together.
    pub fn technique_variants(
        vw: VirtualWarp,
        defer_threshold: u32,
    ) -> [(&'static str, Method); 4] {
        [
            ("static", Method::WarpCentric(WarpCentricOpts::plain(vw))),
            (
                "+dynamic",
                Method::WarpCentric(WarpCentricOpts::plain(vw).with_dynamic()),
            ),
            (
                "+defer",
                Method::WarpCentric(WarpCentricOpts::plain(vw).with_defer(defer_threshold)),
            ),
            (
                "+both",
                Method::WarpCentric(
                    WarpCentricOpts::plain(vw)
                        .with_dynamic()
                        .with_defer(defer_threshold),
                ),
            ),
        ]
    }
}

/// Execution geometry shared by all drivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Threads per block (multiple of 32).
    pub block_threads: u32,
    /// Vertices per work chunk in warp-task mode (static chunks and
    /// dynamic fetches use the same granularity).
    pub chunk_vertices: u32,
    /// Route the read-only CSR arrays (row offsets, column indices)
    /// through the device's read-only cache — the texture-binding trick of
    /// paper-era kernels. Honored by the BFS kernels (ablation A4).
    pub cached_graph_loads: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            block_threads: 256,
            // Small chunks give the dynamic distributor real granularity to
            // balance; each chunk pays one atomic fetch in dynamic mode.
            chunk_vertices: 16,
            cached_graph_loads: false,
        }
    }
}

impl ExecConfig {
    /// Resident grid size that fills the device for persistent warp-task
    /// kernels.
    pub fn resident_grid(&self, cfg: &maxwarp_simt::GpuConfig) -> u32 {
        (cfg.num_sms * cfg.blocks_per_sm(self.block_threads, 0)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Method::Baseline.label(), "baseline");
        assert_eq!(Method::warp(8).label(), "vw8");
        let full = Method::WarpCentric(
            WarpCentricOpts::plain(VirtualWarp::new(32))
                .with_dynamic()
                .with_defer(1024),
        );
        assert_eq!(full.label(), "vw32+dyn+defer");
    }

    #[test]
    fn schedule_mapping() {
        assert_eq!(
            WarpCentricOpts::plain(VirtualWarp::new(4)).schedule(),
            TaskSchedule::StaticBlocked
        );
        assert_eq!(
            WarpCentricOpts::plain(VirtualWarp::new(4))
                .with_dynamic()
                .schedule(),
            TaskSchedule::Dynamic
        );
    }

    #[test]
    fn spec_parse_round_trips() {
        let t = 512;
        for m in table::candidates(t).into_iter().chain(table::k_sweep()) {
            assert_eq!(Method::parse(&m.spec()), Some(m), "spec {}", m.spec());
        }
        for (_, m) in table::technique_variants(VirtualWarp::new(8), 100) {
            assert_eq!(Method::parse(&m.spec()), Some(m));
        }
    }

    #[test]
    fn parse_accepts_label_forms_and_rejects_junk() {
        assert_eq!(Method::parse("baseline"), Some(Method::Baseline));
        assert_eq!(Method::parse(" vw16 "), Some(Method::warp(16)));
        let defer = Method::parse("vw8+defer").unwrap();
        assert!(matches!(
            defer,
            Method::WarpCentric(o) if o.defer_threshold == Some(64)
        ));
        let both = Method::parse("vw32+dyn+defer:9").unwrap();
        assert!(matches!(
            both,
            Method::WarpCentric(o) if o.dynamic && o.defer_threshold == Some(9)
        ));
        for bad in ["", "vw3", "vw64", "vw8+turbo", "warp8", "vw8+defer:x"] {
            assert_eq!(Method::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn candidate_table_shape() {
        let c = table::candidates(64);
        assert_eq!(c.len(), 7);
        assert_eq!(c[0], Method::Baseline);
        assert!(c.iter().any(
            |m| matches!(m, Method::WarpCentric(o) if o.defer_threshold == Some(64) && !o.dynamic)
        ));
        assert!(c
            .iter()
            .any(|m| matches!(m, Method::WarpCentric(o) if o.dynamic)));
        // Specs are unique — the tuning table keys probes by spec.
        let mut specs: Vec<String> = c.iter().map(|m| m.spec()).collect();
        specs.sort();
        specs.dedup();
        assert_eq!(specs.len(), 7);
        assert_eq!(table::k_sweep().len(), 1 + VirtualWarp::ALL.len());
    }

    #[test]
    fn resident_grid_fills_device() {
        let cfg = maxwarp_simt::GpuConfig::fermi_c2050();
        let e = ExecConfig::default();
        // 256-thread blocks: 6 blocks/SM x 14 SMs.
        assert_eq!(e.resident_grid(&cfg), 84);
    }
}
