//! # maxwarp — virtual warp-centric graph processing
//!
//! A from-scratch reproduction of **"Accelerating CUDA Graph Algorithms at
//! Maximum Warp"** (Hong, Kim, Oguntebi, Olukotun — PPoPP 2011), running on
//! the [`maxwarp_simt`] SIMT GPU simulator instead of CUDA hardware.
//!
//! The paper's observation: thread-per-vertex GPU graph kernels collapse on
//! real-world graphs because (1) a warp runs as long as its slowest lane,
//! so one high-degree vertex stalls 31 lanes (*intra-warp workload
//! imbalance*), and (2) each lane walks a different adjacency list, so
//! memory accesses never coalesce. The proposed *virtual warp-centric*
//! method assigns each vertex to a K-lane **virtual warp** whose lanes
//! stride the adjacency list together — trading SIMD-lane (ALU)
//! utilization against imbalance via K — plus two refinements: **deferring
//! outliers** (huge-degree vertices go to a queue processed by whole
//! blocks) and **dynamic workload distribution** (warps fetch vertex chunks
//! from an atomic counter).
//!
//! ## Quick start
//!
//! ```
//! use maxwarp::{run_bfs, DeviceGraph, ExecConfig, Method};
//! use maxwarp_graph::{Dataset, Scale};
//! use maxwarp_simt::{Gpu, GpuConfig};
//!
//! // An extreme-hub graph: the workload class the paper targets.
//! let g = Dataset::WikiTalkLike.build(Scale::Tiny);
//! let src = Dataset::WikiTalkLike.source(&g);
//!
//! let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
//! let dg = DeviceGraph::upload(&mut gpu, &g);
//!
//! let baseline = run_bfs(&mut gpu, &dg, src, Method::Baseline, &ExecConfig::default()).unwrap();
//! let warp = run_bfs(&mut gpu, &dg, src, Method::warp(32), &ExecConfig::default()).unwrap();
//!
//! assert_eq!(baseline.levels, warp.levels); // same answer,
//! assert!(warp.run.cycles() < baseline.run.cycles()); // far fewer cycles.
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`vwarp`] | [`VirtualWarp`] sizes and the per-lane [`VwLayout`] registers |
//! | [`method`] | [`Method`] / [`WarpCentricOpts`] / [`ExecConfig`] |
//! | [`device_graph`] | [`DeviceGraph`] — CSR arrays on the device |
//! | [`kernels::bfs`] | BFS (the paper's primary workload) |
//! | [`kernels::bfs_queue`] | frontier-queue BFS (ablation A2) |
//! | [`kernels::bfs_hybrid`] | direction-optimizing (top-down/bottom-up) BFS |
//! | [`kernels::sssp`] | Bellman-Ford SSSP |
//! | [`kernels::cc`] | label-propagation connected components |
//! | [`kernels::pagerank`] | push-style PageRank |
//! | [`kernels::bc`] | betweenness centrality (GPU Brandes) |
//! | [`kernels::triangles`] | forward-edge triangle counting |
//! | [`kernels::coloring`] | Luby-round graph coloring |
//! | [`kernels::kcore`] | k-core decomposition (parallel peel) |
//! | [`kernels::msbfs`] | multi-source BFS (bitmask frontiers) |
//! | [`kernels::spmv`] | CSR sparse matrix-vector product (scalar vs vector CSR) |
//! | [`runner`] | [`AlgoRun`] accumulation |
//! | [`metrics`] | [`RunRow`] table rows, speedups, geomeans |

pub mod device_graph;
pub mod kernels;
pub mod method;
pub mod metrics;
pub mod runner;
pub mod vwarp;

pub use device_graph::DeviceGraph;
pub use kernels::bc::{run_betweenness, BcOutput};
pub use kernels::bfs::{bfs_round, run_bfs, BfsOutput, BfsState, INF as BFS_INF};
pub use kernels::bfs_hybrid::{run_bfs_hybrid, Direction, GpuHybridConfig, HybridBfsOutput};
pub use kernels::bfs_queue::run_bfs_queue;
pub use kernels::cc::{cc_round, run_cc, CcOutput, CcState};
pub use kernels::coloring::{run_coloring, ColoringOutput};
pub use kernels::kcore::{kcore_reference, run_kcore, KcoreOutput};
pub use kernels::msbfs::{run_msbfs, MsBfsOutput};
pub use kernels::pagerank::{
    pagerank_apply_round, pagerank_base_fp, pagerank_damping_fp, pagerank_fp_to_f32,
    pagerank_push_round, run_pagerank, PagerankOutput, PagerankState, PR_SCALE,
};
pub use kernels::spmv::{run_spmv, spmv_reference, SpmvOutput};
pub use kernels::sssp::{run_sssp, sssp_round, SsspOutput, SsspState, INF as SSSP_INF};
pub use kernels::triangles::{run_triangles, TriangleOutput};
pub use method::{table as method_table, ExecConfig, Method, WarpCentricOpts};
pub use metrics::{geomean, rows_to_json, RunRow};
pub use runner::{check_iteration_bound, AlgoRun};
pub use vwarp::{VirtualWarp, VwLayout};
