//! Virtual warps — the paper's core abstraction.
//!
//! A *virtual warp* of size `K ∈ {1, 2, 4, 8, 16, 32}` is a K-lane slice of
//! a physical 32-lane warp. The virtual warp-centric programming method
//! assigns one *task* (typically: one vertex) to each virtual warp; the
//! `32/K` virtual warps packed into a physical warp execute the same
//! instruction sequence over different tasks, so the physical warp runs for
//! the *maximum* of its virtual warps' trip counts.
//!
//! `K` is the knob that trades the two pathologies against each other:
//!
//! * **large K** → fewer virtual warps per physical warp → less intra-warp
//!   imbalance (a single high-degree vertex no longer stalls 31 foreign
//!   lanes) and better-coalesced neighbor-list reads — but vertices with
//!   degree `< K` waste SIMD lanes (ALU underutilization);
//! * **small K** → full lane utilization on low-degree graphs, but heavy
//!   imbalance and scattered memory on skewed ones.
//!
//! [`VwLayout`] precomputes the per-lane index registers kernels need; it
//! models values a CUDA kernel derives from `threadIdx` once at entry.

use maxwarp_simt::{Lanes, Mask, WARP_SIZE};

/// A validated virtual-warp size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VirtualWarp(u32);

impl VirtualWarp {
    /// All legal sizes, smallest first. `K = 1` is the degenerate
    /// "thread-per-task" layout; `K = 32` is one task per physical warp.
    pub const ALL: [VirtualWarp; 6] = [
        VirtualWarp(1),
        VirtualWarp(2),
        VirtualWarp(4),
        VirtualWarp(8),
        VirtualWarp(16),
        VirtualWarp(32),
    ];

    /// The sizes the paper sweeps in its figures.
    pub const PAPER_SWEEP: [VirtualWarp; 4] = [
        VirtualWarp(4),
        VirtualWarp(8),
        VirtualWarp(16),
        VirtualWarp(32),
    ];

    /// Construct; `k` must be a power of two in `[1, 32]`.
    pub fn new(k: u32) -> VirtualWarp {
        assert!(
            k.is_power_of_two() && k <= WARP_SIZE as u32,
            "virtual warp size {k} must be a power of two <= 32"
        );
        VirtualWarp(k)
    }

    /// Lanes per virtual warp (K).
    #[inline]
    pub fn k(self) -> u32 {
        self.0
    }

    /// Virtual warps per physical warp (`32 / K`).
    #[inline]
    pub fn per_physical(self) -> u32 {
        WARP_SIZE as u32 / self.0
    }

    /// Physical warps needed for `tasks` virtual-warp tasks.
    #[inline]
    pub fn physical_warps_for(self, tasks: u32) -> u32 {
        tasks.div_ceil(self.per_physical())
    }
}

impl std::fmt::Display for VirtualWarp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vw{}", self.0)
    }
}

/// Per-lane index registers for a virtual-warp layout. All fields are
/// "free" register values (derived from lane id at kernel entry, like
/// `threadIdx.x % K` in CUDA).
#[derive(Clone, Copy, Debug)]
pub struct VwLayout {
    /// The virtual warp size.
    pub vw: VirtualWarp,
    /// `lane / K`: which virtual warp within the physical warp.
    pub vw_index: Lanes<u32>,
    /// `lane % K`: this lane's position within its virtual warp.
    pub lane_in_vw: Lanes<u32>,
    /// Mask of virtual-warp leader lanes (`lane % K == 0`).
    pub leaders: Mask,
}

impl VwLayout {
    /// Build the layout for virtual warp size `vw`.
    pub fn new(vw: VirtualWarp) -> VwLayout {
        let k = vw.k();
        VwLayout {
            vw,
            vw_index: Lanes::from_fn(|l| l as u32 / k),
            lane_in_vw: Lanes::from_fn(|l| l as u32 % k),
            leaders: Mask::from_fn(|l| (l as u32).is_multiple_of(k)),
        }
    }

    /// Task ids for each lane given the physical warp's first task:
    /// `base + lane/K`. A register computation (free).
    #[inline]
    pub fn task_ids(&self, base: u32) -> Lanes<u32> {
        self.vw_index.map(|i| base.saturating_add(i))
    }

    /// Mask of lanes whose virtual warp index is below `count` — used when
    /// fewer than `32/K` tasks remain.
    #[inline]
    pub fn active_vws(&self, count: u32) -> Mask {
        let idx = self.vw_index;
        Mask::from_fn(|l| idx.get(l) < count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_sizes_construct() {
        for k in [1u32, 2, 4, 8, 16, 32] {
            let vw = VirtualWarp::new(k);
            assert_eq!(vw.k(), k);
            assert_eq!(vw.per_physical() * k, 32);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = VirtualWarp::new(3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_oversize() {
        let _ = VirtualWarp::new(64);
    }

    #[test]
    fn physical_warp_count() {
        let vw = VirtualWarp::new(8); // 4 vws per physical warp
        assert_eq!(vw.physical_warps_for(0), 0);
        assert_eq!(vw.physical_warps_for(1), 1);
        assert_eq!(vw.physical_warps_for(4), 1);
        assert_eq!(vw.physical_warps_for(5), 2);
    }

    #[test]
    fn layout_indices() {
        let l = VwLayout::new(VirtualWarp::new(8));
        assert_eq!(l.vw_index.get(0), 0);
        assert_eq!(l.vw_index.get(7), 0);
        assert_eq!(l.vw_index.get(8), 1);
        assert_eq!(l.vw_index.get(31), 3);
        assert_eq!(l.lane_in_vw.get(0), 0);
        assert_eq!(l.lane_in_vw.get(7), 7);
        assert_eq!(l.lane_in_vw.get(8), 0);
        assert_eq!(l.leaders.count(), 4);
        assert!(l.leaders.get(0) && l.leaders.get(8) && l.leaders.get(16) && l.leaders.get(24));
    }

    #[test]
    fn task_ids_and_active_vws() {
        let l = VwLayout::new(VirtualWarp::new(16));
        let t = l.task_ids(10);
        assert_eq!(t.get(0), 10);
        assert_eq!(t.get(15), 10);
        assert_eq!(t.get(16), 11);
        let m = l.active_vws(1);
        assert_eq!(m.count(), 16);
        assert!(m.get(15) && !m.get(16));
        assert_eq!(l.active_vws(0), Mask::NONE);
        assert_eq!(l.active_vws(2), Mask::FULL);
    }

    #[test]
    fn degenerate_k1_layout() {
        let l = VwLayout::new(VirtualWarp::new(1));
        assert_eq!(l.vw_index.get(31), 31);
        assert_eq!(l.lane_in_vw.get(31), 0);
        assert!(l.leaders.all());
    }

    #[test]
    fn k32_layout() {
        let l = VwLayout::new(VirtualWarp::new(32));
        assert_eq!(l.vw_index.get(31), 0);
        assert_eq!(l.lane_in_vw.get(31), 31);
        assert_eq!(l.leaders.count(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(VirtualWarp::new(8).to_string(), "vw8");
    }
}
