//! Shared driver machinery: the level-synchronous loop and run results.

use maxwarp_simt::{Gpu, KernelStats, LaunchError, SimtError, WatchdogKind};
use std::panic::Location;

/// Result of running one algorithm end-to-end on the simulated GPU.
#[derive(Clone, Debug, Default)]
pub struct AlgoRun {
    /// Statistics accumulated over every kernel launch of the run.
    pub stats: KernelStats,
    /// Iterations executed (BFS levels, relaxation rounds, PR iterations).
    pub iterations: u32,
    /// Per-iteration cycle counts (useful for level-profile plots).
    pub cycles_per_iteration: Vec<u64>,
}

impl AlgoRun {
    /// Fold one launch's stats into the run, attributing its cycles to the
    /// current iteration. A launch absorbed before any [`begin_iteration`]
    /// (setup kernels, single-shot algorithms) implicitly opens iteration 0
    /// rather than dropping its cycles from the per-iteration profile.
    ///
    /// [`begin_iteration`]: AlgoRun::begin_iteration
    pub fn absorb(&mut self, launch: &KernelStats) {
        if self.cycles_per_iteration.is_empty() {
            self.begin_iteration();
        }
        if let Some(cur) = self.cycles_per_iteration.last_mut() {
            *cur += launch.cycles;
        }
        self.stats.accumulate(launch);
    }

    /// Fold another run into this one: stats accumulate, iteration profiles
    /// concatenate. Lets per-cell results from parallel experiment workers
    /// combine into one aggregate run.
    pub fn merge(&mut self, other: &AlgoRun) {
        self.stats.accumulate(&other.stats);
        self.iterations += other.iterations;
        self.cycles_per_iteration
            .extend_from_slice(&other.cycles_per_iteration);
    }

    /// Begin a new iteration.
    pub fn begin_iteration(&mut self) {
        self.iterations += 1;
        self.cycles_per_iteration.push(0);
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Traversed-edges-per-second at the given clock, for `edges` edges of
    /// useful work.
    pub fn teps(&self, edges: u64, clock_hz: u64) -> f64 {
        if self.stats.cycles == 0 {
            return 0.0;
        }
        edges as f64 / (self.stats.cycles as f64 / clock_hz as f64)
    }
}

/// Guard against runaway fixpoint loops in drivers: errors (with the
/// algorithm name and call site) if iterations exceed the theoretical bound
/// or the device's `watchdog.max_iterations` budget, whichever is tighter.
/// Public so out-of-crate drivers (the sharded BSP executor) share the
/// exact same budget semantics as the single-device loops.
#[track_caller]
pub fn check_iteration_bound(
    gpu: &Gpu,
    algo: &str,
    iterations: u32,
    bound: u32,
) -> Result<(), LaunchError> {
    let site = Location::caller();
    let effective = match gpu.cfg.watchdog.max_iterations {
        Some(cap) => cap.min(bound.saturating_add(2)),
        None => bound.saturating_add(2),
    };
    if iterations > effective {
        return Err(LaunchError::Fault(SimtError::Watchdog(
            WatchdogKind::IterationBudget {
                algo: algo.to_string(),
                iterations,
                budget: effective,
                site,
            },
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_per_iteration() {
        let mut run = AlgoRun::default();
        run.begin_iteration();
        let s = KernelStats {
            cycles: 100,
            instructions: 10,
            ..Default::default()
        };
        run.absorb(&s);
        run.absorb(&s);
        run.begin_iteration();
        run.absorb(&s);
        assert_eq!(run.iterations, 2);
        assert_eq!(run.cycles_per_iteration, vec![200, 100]);
        assert_eq!(run.cycles(), 300);
        assert_eq!(run.stats.instructions, 30);
    }

    #[test]
    fn absorb_before_begin_opens_iteration_zero() {
        let mut run = AlgoRun::default();
        let s = KernelStats {
            cycles: 40,
            ..Default::default()
        };
        run.absorb(&s); // no begin_iteration yet: must not lose these cycles
        assert_eq!(run.iterations, 1);
        assert_eq!(run.cycles_per_iteration, vec![40]);
        run.begin_iteration();
        run.absorb(&s);
        assert_eq!(run.cycles_per_iteration, vec![40, 40]);
        assert_eq!(
            run.cycles_per_iteration.iter().sum::<u64>(),
            run.stats.cycles,
            "per-iteration profile must account for every absorbed cycle"
        );
    }

    #[test]
    fn merge_concatenates_profiles() {
        let mut a = AlgoRun::default();
        let mut b = AlgoRun::default();
        let s = KernelStats {
            cycles: 10,
            instructions: 2,
            ..Default::default()
        };
        a.begin_iteration();
        a.absorb(&s);
        b.begin_iteration();
        b.absorb(&s);
        b.absorb(&s);
        a.merge(&b);
        assert_eq!(a.iterations, 2);
        assert_eq!(a.cycles_per_iteration, vec![10, 20]);
        assert_eq!(a.stats.instructions, 6);
        assert_eq!(a.cycles(), 30);
    }

    #[test]
    fn teps_math() {
        let mut run = AlgoRun::default();
        run.stats.cycles = 1_000_000;
        // 1M edges in 1M cycles at 1GHz = 1e9 edges/s.
        let teps = run.teps(1_000_000, 1_000_000_000);
        assert!((teps - 1e9).abs() < 1.0);
        let empty = AlgoRun::default();
        assert_eq!(empty.teps(100, 1_000_000_000), 0.0);
    }

    #[test]
    fn iteration_bound_errors() {
        let gpu = Gpu::new(maxwarp_simt::GpuConfig::tiny_test());
        assert!(check_iteration_bound(&gpu, "bfs", 10, 10).is_ok());
        let err = check_iteration_bound(&gpu, "bfs", 100, 10).unwrap_err();
        assert!(err.to_string().contains("not converging"), "{err}");
        assert!(matches!(
            err,
            LaunchError::Fault(SimtError::Watchdog(WatchdogKind::IterationBudget {
                budget: 12,
                ..
            }))
        ));
    }

    #[test]
    fn iteration_bound_respects_watchdog_cap() {
        let mut cfg = maxwarp_simt::GpuConfig::tiny_test();
        cfg.watchdog.max_iterations = Some(0);
        let gpu = Gpu::new(cfg);
        // An iteration cap of 0 trips on the very first iteration.
        let err = check_iteration_bound(&gpu, "bfs", 1, 1000).unwrap_err();
        assert!(matches!(
            err,
            LaunchError::Fault(SimtError::Watchdog(WatchdogKind::IterationBudget {
                budget: 0,
                ..
            }))
        ));
    }
}
