//! Shared driver machinery: the level-synchronous loop and run results.

use maxwarp_simt::KernelStats;

/// Result of running one algorithm end-to-end on the simulated GPU.
#[derive(Clone, Debug, Default)]
pub struct AlgoRun {
    /// Statistics accumulated over every kernel launch of the run.
    pub stats: KernelStats,
    /// Iterations executed (BFS levels, relaxation rounds, PR iterations).
    pub iterations: u32,
    /// Per-iteration cycle counts (useful for level-profile plots).
    pub cycles_per_iteration: Vec<u64>,
}

impl AlgoRun {
    /// Fold one launch's stats into the run, attributing its cycles to the
    /// current iteration.
    pub fn absorb(&mut self, launch: &KernelStats) {
        if let Some(last) = self.cycles_per_iteration.last_mut() {
            *last += launch.cycles;
        }
        self.stats.accumulate(launch);
    }

    /// Begin a new iteration.
    pub fn begin_iteration(&mut self) {
        self.iterations += 1;
        self.cycles_per_iteration.push(0);
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Traversed-edges-per-second at the given clock, for `edges` edges of
    /// useful work.
    pub fn teps(&self, edges: u64, clock_hz: u64) -> f64 {
        if self.stats.cycles == 0 {
            return 0.0;
        }
        edges as f64 / (self.stats.cycles as f64 / clock_hz as f64)
    }
}

/// Guard against runaway fixpoint loops in drivers: panics (with the
/// algorithm name) if iterations exceed the theoretical bound.
pub(crate) fn check_iteration_bound(algo: &str, iterations: u32, bound: u32) {
    assert!(
        iterations <= bound.saturating_add(2),
        "{algo}: {iterations} iterations exceeds bound {bound} — kernel not converging"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_per_iteration() {
        let mut run = AlgoRun::default();
        run.begin_iteration();
        let mut s = KernelStats::default();
        s.cycles = 100;
        s.instructions = 10;
        run.absorb(&s);
        run.absorb(&s);
        run.begin_iteration();
        run.absorb(&s);
        assert_eq!(run.iterations, 2);
        assert_eq!(run.cycles_per_iteration, vec![200, 100]);
        assert_eq!(run.cycles(), 300);
        assert_eq!(run.stats.instructions, 30);
    }

    #[test]
    fn teps_math() {
        let mut run = AlgoRun::default();
        run.stats.cycles = 1_000_000;
        // 1M edges in 1M cycles at 1GHz = 1e9 edges/s.
        let teps = run.teps(1_000_000, 1_000_000_000);
        assert!((teps - 1e9).abs() < 1.0);
        let empty = AlgoRun::default();
        assert_eq!(empty.teps(100, 1_000_000_000), 0.0);
    }

    #[test]
    #[should_panic(expected = "not converging")]
    fn iteration_bound_panics() {
        check_iteration_bound("bfs", 100, 10);
    }
}
