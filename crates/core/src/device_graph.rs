//! CSR graph resident in simulated device memory.

use maxwarp_graph::Csr;
use maxwarp_simt::{DevPtr, Gpu};

/// A graph uploaded to the device: the two CSR arrays plus optional edge
/// weights, and host-side copies of the sizes.
#[derive(Clone, Copy, Debug)]
pub struct DeviceGraph {
    /// `n + 1` row offsets.
    pub row_offsets: DevPtr<u32>,
    /// `m` column indices.
    pub col_indices: DevPtr<u32>,
    /// Optional `m` edge weights (aligned with `col_indices`).
    pub weights: Option<DevPtr<u32>>,
    /// Vertex count.
    pub n: u32,
    /// Directed edge count.
    pub m: u32,
}

impl DeviceGraph {
    /// Upload `g` to the device.
    pub fn upload(gpu: &mut Gpu, g: &Csr) -> DeviceGraph {
        assert!(
            g.num_edges() <= u32::MAX as u64,
            "graph too large for u32 device offsets"
        );
        DeviceGraph {
            row_offsets: gpu.mem.alloc_from(g.row_offsets()),
            col_indices: gpu.mem.alloc_from(g.col_indices()),
            weights: None,
            n: g.num_vertices(),
            m: g.num_edges() as u32,
        }
    }

    /// Upload `g` along with per-edge weights.
    pub fn upload_weighted(gpu: &mut Gpu, g: &Csr, weights: &[u32]) -> DeviceGraph {
        assert_eq!(weights.len() as u64, g.num_edges(), "one weight per edge");
        let mut dg = DeviceGraph::upload(gpu, g);
        dg.weights = Some(gpu.mem.alloc_from(weights));
        dg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::erdos_renyi;
    use maxwarp_simt::GpuConfig;

    #[test]
    fn upload_roundtrip() {
        let g = erdos_renyi(100, 500, 1);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        assert_eq!(dg.n, 100);
        assert_eq!(dg.m, 500);
        assert_eq!(gpu.mem.download(dg.row_offsets), g.row_offsets());
        assert_eq!(gpu.mem.download(dg.col_indices), g.col_indices());
        assert!(dg.weights.is_none());
    }

    #[test]
    fn weighted_upload() {
        let g = erdos_renyi(50, 200, 2);
        let w: Vec<u32> = (0..200u32).map(|i| i % 7 + 1).collect();
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &w);
        assert_eq!(gpu.mem.download(dg.weights.unwrap()), w);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weight_length_checked() {
        let g = erdos_renyi(10, 20, 3);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let _ = DeviceGraph::upload_weighted(&mut gpu, &g, &[1, 2, 3]);
    }
}
