//! Derived metrics and table rows for the experiment harness.

use crate::runner::AlgoRun;
use maxwarp_simt::TimingReport;
use serde::{Deserialize, Serialize};

/// One measured configuration: the row format the figure harnesses print
/// and serialize into `results/*.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRow {
    /// Dataset name.
    pub dataset: String,
    /// Method label (`baseline`, `vw8`, `vw32+dyn+defer`, ...).
    pub method: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Millions of traversed edges per second at the device clock.
    pub mteps: f64,
    /// SIMD lane utilization in `[0, 1]`.
    pub lane_utilization: f64,
    /// Global-memory transactions per memory instruction.
    pub tx_per_mem: f64,
    /// Iterations (levels / rounds).
    pub iterations: u32,
    /// Fraction of cycles the DRAM channel was busy, from the timing
    /// engine's [`TimingReport`] (0 when timing detail wasn't captured).
    pub dram_utilization: f64,
    /// Busiest-over-mean SM instruction ratio — inter-SM workload
    /// imbalance (0 when timing detail wasn't captured).
    pub sm_imbalance: f64,
}

impl RunRow {
    /// Build a row from a finished run.
    pub fn new(
        dataset: &str,
        method: &str,
        run: &AlgoRun,
        useful_edges: u64,
        clock_hz: u64,
    ) -> RunRow {
        RunRow {
            dataset: dataset.to_string(),
            method: method.to_string(),
            cycles: run.cycles(),
            mteps: run.teps(useful_edges, clock_hz) / 1e6,
            lane_utilization: run.stats.lane_utilization(),
            tx_per_mem: run.stats.tx_per_mem_instruction(),
            iterations: run.iterations,
            dram_utilization: 0.0,
            sm_imbalance: 0.0,
        }
    }

    /// Attach timing-engine detail (DRAM utilization, SM imbalance) from
    /// the device's accumulated [`TimingReport`].
    pub fn with_timing(mut self, timing: &TimingReport) -> RunRow {
        self.dram_utilization = timing.dram_utilization();
        self.sm_imbalance = timing.sm_imbalance();
        self
    }

    /// Speedup of this row relative to `base` (cycle ratio).
    pub fn speedup_over(&self, base: &RunRow) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        base.cycles as f64 / self.cycles as f64
    }

    /// This row as a JSON object (hand-rolled: the vendored serde derives
    /// are markers without codegen).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"method\": \"{}\", \"cycles\": {}, \"mteps\": {:.3}, \
             \"lane_utilization\": {:.6}, \"tx_per_mem\": {:.6}, \"iterations\": {}, \
             \"dram_utilization\": {:.6}, \"sm_imbalance\": {:.6}}}",
            json_escape(&self.dataset),
            json_escape(&self.method),
            self.cycles,
            self.mteps,
            self.lane_utilization,
            self.tx_per_mem,
            self.iterations,
            self.dram_utilization,
            self.sm_imbalance,
        )
    }
}

/// Serialize rows as a JSON array (one object per line).
pub fn rows_to_json(rows: &[RunRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Geometric mean of a set of positive values (0 if empty).
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = vals.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_simt::KernelStats;

    fn run_with_cycles(c: u64) -> AlgoRun {
        AlgoRun {
            stats: KernelStats {
                cycles: c,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn row_and_speedup() {
        let base = RunRow::new("g", "baseline", &run_with_cycles(1000), 500, 1_000_000_000);
        let fast = RunRow::new("g", "vw32", &run_with_cycles(250), 500, 1_000_000_000);
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-12);
        assert!((base.speedup_over(&base) - 1.0).abs() < 1e-12);
        assert!(fast.mteps > base.mteps);
    }

    #[test]
    fn geomean_math() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_structure() {
        let mut row = RunRow::new("rmat", "vw8", &run_with_cycles(100), 50, 1_000_000_000);
        row.dram_utilization = 0.5;
        row.sm_imbalance = 1.25;
        let j = row.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"dataset\": \"rmat\""));
        assert!(j.contains("\"dram_utilization\": 0.500000"));
        assert!(j.contains("\"sm_imbalance\": 1.250000"));
        let arr = rows_to_json(&[row.clone(), row]);
        assert!(arr.starts_with("[\n") && arr.ends_with("]\n"));
        assert_eq!(arr.matches("\"dataset\"").count(), 2);
    }

    #[test]
    fn json_escapes_quotes_in_labels() {
        let row = RunRow::new("g", "vw32 [\"dyn\"]", &run_with_cycles(1), 1, 1);
        assert!(row.to_json().contains("vw32 [\\\"dyn\\\"]"));
    }

    #[test]
    fn with_timing_fills_utilization() {
        use maxwarp_simt::TimingReport;
        let t = TimingReport {
            cycles: 100,
            dram_busy_cycles: 40,
            sm_instructions: vec![10, 30],
            ..Default::default()
        };
        let row = RunRow::new("g", "a", &run_with_cycles(100), 1, 1).with_timing(&t);
        assert!((row.dram_utilization - 0.4).abs() < 1e-12);
        assert!((row.sm_imbalance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_speedup_is_zero() {
        let base = RunRow::new("g", "a", &run_with_cycles(100), 1, 1_000_000_000);
        let zero = RunRow::new("g", "b", &run_with_cycles(0), 1, 1_000_000_000);
        assert_eq!(zero.speedup_over(&base), 0.0);
    }
}
