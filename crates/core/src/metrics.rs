//! Derived metrics and table rows for the experiment harness.

use crate::runner::AlgoRun;
use serde::{Deserialize, Serialize};

/// One measured configuration: the row format the figure harnesses print.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRow {
    /// Dataset name.
    pub dataset: String,
    /// Method label (`baseline`, `vw8`, `vw32+dyn+defer`, ...).
    pub method: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Millions of traversed edges per second at the device clock.
    pub mteps: f64,
    /// SIMD lane utilization in `[0, 1]`.
    pub lane_utilization: f64,
    /// Global-memory transactions per memory instruction.
    pub tx_per_mem: f64,
    /// Iterations (levels / rounds).
    pub iterations: u32,
}

impl RunRow {
    /// Build a row from a finished run.
    pub fn new(
        dataset: &str,
        method: &str,
        run: &AlgoRun,
        useful_edges: u64,
        clock_hz: u64,
    ) -> RunRow {
        RunRow {
            dataset: dataset.to_string(),
            method: method.to_string(),
            cycles: run.cycles(),
            mteps: run.teps(useful_edges, clock_hz) / 1e6,
            lane_utilization: run.stats.lane_utilization(),
            tx_per_mem: run.stats.tx_per_mem_instruction(),
            iterations: run.iterations,
        }
    }

    /// Speedup of this row relative to `base` (cycle ratio).
    pub fn speedup_over(&self, base: &RunRow) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        base.cycles as f64 / self.cycles as f64
    }
}

/// Geometric mean of a set of positive values (0 if empty).
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = vals.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_simt::KernelStats;

    fn run_with_cycles(c: u64) -> AlgoRun {
        AlgoRun {
            stats: KernelStats {
                cycles: c,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn row_and_speedup() {
        let base = RunRow::new("g", "baseline", &run_with_cycles(1000), 500, 1_000_000_000);
        let fast = RunRow::new("g", "vw32", &run_with_cycles(250), 500, 1_000_000_000);
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-12);
        assert!((base.speedup_over(&base) - 1.0).abs() < 1e-12);
        assert!(fast.mteps > base.mteps);
    }

    #[test]
    fn geomean_math() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_speedup_is_zero() {
        let base = RunRow::new("g", "a", &run_with_cycles(100), 1, 1_000_000_000);
        let zero = RunRow::new("g", "b", &run_with_cycles(0), 1, 1_000_000_000);
        assert_eq!(zero.speedup_over(&base), 0.0);
    }
}
