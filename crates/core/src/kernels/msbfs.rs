//! Multi-source BFS (MS-BFS) with bitmask frontiers.
//!
//! Runs up to 32 BFS traversals *simultaneously*: each vertex carries a
//! 32-bit `seen` mask (bit `s` = reached by source `s`) and a `frontier`
//! mask for the current level. One edge traversal serves all sources at
//! once — the batching idea behind the Green-Marl authors' later MS-BFS
//! work — and the irregular per-vertex expansion is the same loop the
//! paper optimizes, so both baseline and virtual warp-centric mappings
//! apply unchanged.
//!
//! Discovery levels per (source, vertex) pair are recorded on the device
//! (`disc[s*n + v]`), which is what the tests validate against 32
//! independent reference BFS runs.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    load_row_range, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

/// Level of never-discovered (source, vertex) pairs.
pub const INF: u32 = u32::MAX;

/// Result of a multi-source BFS run.
#[derive(Clone, Debug)]
pub struct MsBfsOutput {
    /// `levels[s][v]` = BFS level of `v` from `sources[s]` (`INF` if
    /// unreachable).
    pub levels: Vec<Vec<u32>>,
    /// Execution record.
    pub run: AlgoRun,
}

struct MsState {
    seen: DevPtr<u32>,
    frontier: DevPtr<u32>,
    next: DevPtr<u32>,
    disc: DevPtr<u32>,
    changed: DevPtr<u32>,
}

/// Per-edge action: push the source bits of `fmask` (the expanding
/// vertex's frontier bits) to each neighbor; newly seen bits are recorded
/// with their discovery level.
#[allow(clippy::too_many_arguments)]
fn ms_edge_body(
    g: DeviceGraph,
    st_seen: DevPtr<u32>,
    st_next: DevPtr<u32>,
    disc: DevPtr<u32>,
    changed: DevPtr<u32>,
    n: u32,
    next_level: u32,
    fmask: Lanes<u32>,
) -> impl Fn(&mut WarpCtx<'_>, Mask, &Lanes<u32>) + Copy {
    move |w, act, i| {
        let nbr = w.ld(act, g.col_indices, i);
        // new = fmask & ~seen[nbr], claimed atomically so each bit is
        // discovered exactly once.
        let old = w.atomic_or(act, st_seen, &nbr, &fmask);
        let new = w.alu2(act, &fmask, &old, |f, o| f & !o);
        let m_new = w.alu_pred(act, &new, |x| x != 0);
        if m_new.none() {
            return;
        }
        let _ = w.atomic_or(m_new, st_next, &nbr, &new);
        w.st_uniform(m_new, changed, 0, 1);
        // Record the discovery level of each fresh bit (divergent loop
        // over set bits, like a __ffs-driven loop in CUDA).
        let mut rest = new;
        let mut live = m_new;
        while live.any() {
            let bit = w.alu1(live, &rest, |x| x & x.wrapping_neg());
            let slot = {
                let mut s = Lanes::splat(0u32);
                for l in live.iter() {
                    s.set(l, bit.get(l).trailing_zeros() * n + nbr.get(l));
                }
                w.alu_nop(live); // index arithmetic
                s
            };
            w.st(live, disc, &slot, &Lanes::splat(next_level));
            rest = w.alu2(live, &rest, &bit, |r, b| r & !b);
            live = w.alu_pred(live, &rest, |x| x != 0);
        }
    }
}

/// Run BFS from up to 32 sources simultaneously.
///
/// ```
/// use maxwarp::{run_msbfs, DeviceGraph, ExecConfig, Method};
/// use maxwarp_simt::{Gpu, GpuConfig};
///
/// // Path 0 - 1 - 2 (symmetric).
/// let g = maxwarp_graph::Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
/// let mut gpu = Gpu::new(GpuConfig::tiny_test());
/// let dg = DeviceGraph::upload(&mut gpu, &g);
/// let out = run_msbfs(&mut gpu, &dg, &[0, 2], Method::Baseline, &ExecConfig::default())
///     .unwrap();
/// assert_eq!(out.levels[0], vec![0, 1, 2]); // from vertex 0
/// assert_eq!(out.levels[1], vec![2, 1, 0]); // from vertex 2
/// ```
pub fn run_msbfs(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    sources: &[u32],
    method: Method,
    exec: &ExecConfig,
) -> Result<MsBfsOutput, LaunchError> {
    assert!(
        !sources.is_empty() && sources.len() <= 32,
        "MS-BFS batches 1..=32 sources"
    );
    if let Method::WarpCentric(o) = method {
        assert!(
            o.defer_threshold.is_none(),
            "outlier deferral is not wired into MS-BFS"
        );
    }
    let n = g.n;
    let st = MsState {
        seen: gpu.mem.alloc::<u32>(n),
        frontier: gpu.mem.alloc::<u32>(n),
        next: gpu.mem.alloc::<u32>(n),
        disc: gpu
            .mem
            .alloc::<u32>(match n.checked_mul(sources.len() as u32) {
                Some(words) => words,
                None => panic!("disc too large"),
            }),
        changed: gpu.mem.alloc::<u32>(1),
    };
    gpu.mem.fill(st.disc, INF);
    // Real cudaMalloc memory is uninitialized; `seen`/`frontier` are read
    // (host-side below, device-side in the first level) before any store.
    gpu.mem.fill(st.seen, 0u32);
    gpu.mem.fill(st.frontier, 0u32);
    for (s, &v) in sources.iter().enumerate() {
        assert!(v < n, "source {v} out of range for n={n}");
        let bit = 1u32 << s;
        let cur = gpu.mem.read(st.seen, v);
        gpu.mem.write(st.seen, v, cur | bit);
        let cf = gpu.mem.read(st.frontier, v);
        gpu.mem.write(st.frontier, v, cf | bit);
        gpu.mem.write(st.disc, s as u32 * n + v, 0u32);
    }

    let mut run = AlgoRun::default();
    let mut level = 0u32;
    let mut st = st;
    loop {
        run.begin_iteration();
        gpu.mem.write(st.changed, 0, 0u32);
        gpu.mem.fill(st.next, 0u32);

        let stats = launch_level(gpu, g, &st, n, level + 1, method, exec)?;
        run.absorb(&stats);

        if gpu.mem.read(st.changed, 0) == 0 {
            break;
        }
        std::mem::swap(&mut st.frontier, &mut st.next);
        level += 1;
        check_iteration_bound(gpu, "msbfs", level, n)?;
    }

    let disc = gpu.mem.download(st.disc);
    let levels = (0..sources.len())
        .map(|s| disc[s * n as usize..(s + 1) * n as usize].to_vec())
        .collect();
    Ok(MsBfsOutput { levels, run })
}

fn launch_level(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &MsState,
    n: u32,
    next_level: u32,
    method: Method,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let (seen, frontier, next, disc, changed) =
        (st.seen, st.frontier, st.next, st.disc, st.changed);
    match method {
        Method::Baseline => {
            let kernel = move |b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let vid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &vid, n);
                    if m.none() {
                        return;
                    }
                    let fm = w.ld(m, frontier, &vid);
                    let mf = w.alu_pred(m, &fm, |x| x != 0);
                    if mf.none() {
                        return;
                    }
                    let (s, e) = load_row_range(w, &g, mf, &vid);
                    let body = ms_edge_body(g, seen, next, disc, changed, n, next_level, fm);
                    scalar_neighbor_loop(w, mf, &s, &e, body);
                });
            };
            gpu.launch(
                n.div_ceil(exec.block_threads).max(1),
                exec.block_threads,
                &kernel,
            )
        }
        Method::WarpCentric(opts) => {
            let layout = VwLayout::new(opts.vw);
            let vpp = vertices_per_pass(&layout);
            let chunk = exec.chunk_vertices.max(vpp);
            let num_tasks = n.div_ceil(chunk);
            let grid = exec.resident_grid(&gpu.cfg);
            gpu.launch_warp_tasks(
                grid,
                exec.block_threads,
                num_tasks,
                opts.schedule(),
                move |w, task| {
                    let chunk_base = task * chunk;
                    let chunk_end = (chunk_base + chunk).min(n);
                    let mut base = chunk_base;
                    while base < chunk_end {
                        let vids = layout.task_ids(base);
                        let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                        if m.none() {
                            break;
                        }
                        let fm = w.ld(m, frontier, &vids);
                        let mf = w.alu_pred(m, &fm, |x| x != 0);
                        if mf.any() {
                            let (s, e) = load_row_range(w, &g, mf, &vids);
                            let body =
                                ms_edge_body(g, seen, next, disc, changed, n, next_level, fm);
                            vw_neighbor_loop(w, &layout, mf, &s, &e, body);
                        }
                        base += vpp;
                    }
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::reference::bfs_levels;
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn check(d: Dataset, sources: &[u32], method: Method) {
        let g = d.build(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_msbfs(&mut gpu, &dg, sources, method, &ExecConfig::default()).unwrap();
        for (s, &src) in sources.iter().enumerate() {
            let want = bfs_levels(&g, src);
            assert_eq!(
                out.levels[s],
                want,
                "{} source {} ({})",
                d.name(),
                src,
                method.label()
            );
        }
    }

    #[test]
    fn matches_32_independent_bfs_on_random() {
        let g = Dataset::Random.build(Scale::Tiny);
        let sources: Vec<u32> = (0..32u32).map(|s| (s * 61) % g.num_vertices()).collect();
        check(Dataset::Random, &sources, Method::Baseline);
        check(Dataset::Random, &sources, Method::warp(8));
    }

    #[test]
    fn matches_on_hub_graph() {
        let g = Dataset::WikiTalkLike.build(Scale::Tiny);
        let sources: Vec<u32> = (0..16u32).map(|s| (s * 127) % g.num_vertices()).collect();
        check(Dataset::WikiTalkLike, &sources, Method::warp(32));
    }

    #[test]
    fn single_source_degenerates_to_bfs() {
        check(Dataset::Rmat, &[0], Method::warp(4));
    }

    #[test]
    fn duplicate_sources_share_levels() {
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_msbfs(
            &mut gpu,
            &dg,
            &[7, 7],
            Method::Baseline,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(out.levels[0], out.levels[1]);
    }

    #[test]
    fn batching_is_cheaper_than_sequential_runs() {
        // The whole point of MS-BFS: 16 sources in one sweep cost far less
        // than 16 independent BFS runs.
        let d = Dataset::SmallWorld;
        let g = d.build(Scale::Tiny);
        let sources: Vec<u32> = (0..16u32).map(|s| s * 100).collect();
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let batched = run_msbfs(
            &mut gpu,
            &dg,
            &sources,
            Method::warp(8),
            &ExecConfig::default(),
        )
        .unwrap()
        .run
        .cycles();
        let mut sequential = 0u64;
        for &src in &sources {
            let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            sequential += crate::kernels::bfs::run_bfs(
                &mut gpu,
                &dg,
                src,
                Method::warp(8),
                &ExecConfig::default(),
            )
            .unwrap()
            .run
            .cycles();
        }
        assert!(
            batched * 3 < sequential,
            "batched {batched} vs sequential {sequential}"
        );
    }

    #[test]
    #[should_panic(expected = "1..=32 sources")]
    fn too_many_sources_rejected() {
        let g = Dataset::Rmat.build(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let sources: Vec<u32> = (0..33).collect();
        let _ = run_msbfs(
            &mut gpu,
            &dg,
            &sources,
            Method::Baseline,
            &ExecConfig::default(),
        );
    }
}
