//! Frontier-queue BFS — the alternative formulation with explicit work
//! queues.
//!
//! The paper's primary BFS (like Harish–Narayanan's) re-scans the whole
//! level array every iteration, paying `O(n)` per level. This variant keeps
//! the current frontier in a device queue and builds the next frontier with
//! a **warp-cooperative enqueue**: lanes claim unvisited neighbors with
//! `atomicCAS`, ballot the claims, the leader reserves space with one
//! `atomicAdd`, and each claimer stores at `base + rank(lane)`. Per level
//! the cost is `O(frontier + edges(frontier))` — a huge win on
//! high-diameter graphs (road networks) whose frontiers are thin slivers
//! of the graph.
//!
//! Both the thread-per-entry baseline and the virtual warp-centric mapping
//! are provided; ablation A2 in DESIGN.md compares the two formulations.

use crate::device_graph::DeviceGraph;
use crate::kernels::bfs::{BfsOutput, INF};
use crate::kernels::common::{load_row_range, scalar_neighbor_loop, vw_neighbor_loop};
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

struct QueueState {
    levels: DevPtr<u32>,
    f_in: DevPtr<u32>,
    f_out: DevPtr<u32>,
    count_out: DevPtr<u32>,
}

/// Claim unvisited neighbors at edge indices `i` (CAS on the level array)
/// and enqueue the winners cooperatively across the warp.
#[allow(clippy::too_many_arguments)]
fn claim_and_enqueue(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    levels: DevPtr<u32>,
    f_out: DevPtr<u32>,
    count_out: DevPtr<u32>,
    next: u32,
    act: Mask,
    i: &Lanes<u32>,
) {
    let nbr = w.ld(act, g.col_indices, i);
    // atomicCAS claim: exactly one claimer per vertex ever wins, so the
    // out-queue cannot overflow or hold duplicates.
    let old = w.atomic_cas(act, levels, &nbr, &Lanes::splat(INF), &Lanes::splat(next));
    let won = w.alu_pred(act, &old, |x| x == INF);
    if won.none() {
        return;
    }
    // Warp-cooperative enqueue: ballot + one atomic for the whole warp.
    let ballot = w.ballot(act, won);
    let base = w.atomic_add_uniform(won, count_out, 0, ballot.count());
    let pos = w.alu1(won, &w.lane_ids(), |l| base + ballot.rank(l as usize));
    w.st(won, f_out, &pos, &nbr);
}

/// Run frontier-queue BFS from `src`. `opts.defer_threshold` is not
/// supported in this formulation (the queue already load-balances whole
/// vertices) and is rejected.
pub fn run_bfs_queue(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    src: u32,
    method: Method,
    exec: &ExecConfig,
) -> Result<BfsOutput, LaunchError> {
    if let Method::WarpCentric(o) = method {
        assert!(
            o.defer_threshold.is_none(),
            "outlier deferral is not supported by the frontier-queue formulation"
        );
    }
    assert!(src < g.n, "source {src} out of range for n={}", g.n);
    let levels = gpu.mem.alloc::<u32>(g.n);
    gpu.mem.fill(levels, INF);
    gpu.mem.write(levels, src, 0);
    let mut st = QueueState {
        levels,
        f_in: gpu.mem.alloc::<u32>(g.n.max(1)),
        f_out: gpu.mem.alloc::<u32>(g.n.max(1)),
        count_out: gpu.mem.alloc::<u32>(1),
    };
    gpu.mem.write(st.f_in, 0, src);
    let mut frontier_len = 1u32;

    let mut run = AlgoRun::default();
    let mut cur = 0u32;
    while frontier_len > 0 {
        run.begin_iteration();
        gpu.mem.write(st.count_out, 0, 0u32);

        if gpu.profiling() {
            gpu.set_profile_label(&format!("bfs_queue level {cur}"));
        }
        let stats = match method {
            Method::Baseline => launch_baseline_level(gpu, g, &st, frontier_len, cur, exec)?,
            Method::WarpCentric(opts) => {
                launch_warp_level(gpu, g, &st, frontier_len, cur, opts, exec)?
            }
        };
        run.absorb(&stats);

        frontier_len = gpu.mem.read(st.count_out, 0);
        assert!(frontier_len <= g.n, "queue overflow: {frontier_len}");
        std::mem::swap(&mut st.f_in, &mut st.f_out);
        cur += 1;
        check_iteration_bound(gpu, "bfs-queue", cur, g.n)?;
    }
    Ok(BfsOutput {
        levels: gpu.mem.download(st.levels),
        run,
    })
}

/// Thread-per-frontier-entry expansion.
fn launch_baseline_level(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &QueueState,
    frontier_len: u32,
    cur: u32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, levels, f_in, f_out, count_out) = (*g, st.levels, st.f_in, st.f_out, st.count_out);
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let tid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &tid, frontier_len);
            if m.none() {
                return;
            }
            let v = w.ld(m, f_in, &tid);
            let (s, e) = load_row_range(w, &g, m, &v);
            scalar_neighbor_loop(w, m, &s, &e, |w, act, i| {
                claim_and_enqueue(w, &g, levels, f_out, count_out, cur + 1, act, i);
            });
        });
    };
    let grid = frontier_len.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

/// Virtual-warp-per-frontier-entry expansion (as warp tasks over chunks of
/// frontier entries, honoring static/dynamic distribution).
fn launch_warp_level(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &QueueState,
    frontier_len: u32,
    cur: u32,
    opts: WarpCentricOpts,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, levels, f_in, f_out, count_out) = (*g, st.levels, st.f_in, st.f_out, st.count_out);
    let layout = VwLayout::new(opts.vw);
    let vpp = layout.vw.per_physical();
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = frontier_len.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);

    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(frontier_len);
            let mut base = chunk_base;
            while base < chunk_end {
                let entry = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &entry, chunk_end);
                if m.none() {
                    break;
                }
                let v = w.ld(m, f_in, &entry);
                let (s, e) = load_row_range(w, &g, m, &v);
                vw_neighbor_loop(w, &layout, m, &s, &e, |w, act, i| {
                    claim_and_enqueue(w, &g, levels, f_out, count_out, cur + 1, act, i);
                });
                base += vpp;
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwarp::VirtualWarp;
    use maxwarp_graph::reference::bfs_levels;
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn methods() -> Vec<Method> {
        vec![
            Method::Baseline,
            Method::warp(4),
            Method::warp(32),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(8)).with_dynamic()),
        ]
    }

    fn check_dataset(d: Dataset) {
        let g = d.build(Scale::Tiny);
        let src = d.source(&g);
        let want = bfs_levels(&g, src);
        for method in methods() {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out = run_bfs_queue(&mut gpu, &dg, src, method, &ExecConfig::default()).unwrap();
            assert_eq!(out.levels, want, "{} / {}", d.name(), method.label());
        }
    }

    #[test]
    fn correct_on_rmat() {
        check_dataset(Dataset::Rmat);
    }

    #[test]
    fn correct_on_roadnet() {
        check_dataset(Dataset::RoadNet);
    }

    #[test]
    fn correct_on_wikitalk_like() {
        check_dataset(Dataset::WikiTalkLike);
    }

    #[test]
    fn correct_on_patents_like() {
        check_dataset(Dataset::PatentsLike);
    }

    #[test]
    fn iteration_count_matches_bfs_depth() {
        let g = maxwarp_graph::grid2d(12, 1); // path of 12 vertices
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out =
            run_bfs_queue(&mut gpu, &dg, 0, Method::Baseline, &ExecConfig::default()).unwrap();
        // 11 expansion levels plus the final empty-frontier check.
        assert_eq!(out.run.iterations, 12);
        assert_eq!(out.levels[11], 11);
    }

    #[test]
    fn queue_avoids_per_level_scan_work() {
        // The whole point of the queue formulation: no O(n) scan per level.
        // At tiny scale the *cycle* win is hidden by per-level latency
        // floors (it reaches 3.5-5.4x at medium scale — ablation A2), but
        // the executed-instruction volume shows the mechanism at any scale.
        let d = Dataset::RoadNet;
        let g = d.build(Scale::Tiny);
        let src = d.source(&g);
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let scan = crate::kernels::bfs::run_bfs(
            &mut gpu,
            &dg,
            src,
            Method::Baseline,
            &ExecConfig::default(),
        )
        .unwrap();
        let mut gpu2 = Gpu::new(GpuConfig::fermi_c2050());
        let dg2 = DeviceGraph::upload(&mut gpu2, &g);
        let queue = run_bfs_queue(
            &mut gpu2,
            &dg2,
            src,
            Method::Baseline,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(scan.levels, queue.levels);
        assert!(
            queue.run.stats.instructions * 2 < scan.run.stats.instructions,
            "queue {} vs scan {} instructions",
            queue.run.stats.instructions,
            scan.run.stats.instructions
        );
        // And the queue must never be meaningfully slower even at tiny.
        assert!(
            queue.run.cycles() < scan.run.cycles() + scan.run.cycles() / 10,
            "queue {} vs scan {} cycles",
            queue.run.cycles(),
            scan.run.cycles()
        );
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn defer_rejected() {
        let g = Dataset::Rmat.build(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let m = Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(8)).with_defer(10));
        let _ = run_bfs_queue(&mut gpu, &dg, 0, m, &ExecConfig::default());
    }

    #[test]
    fn no_duplicate_enqueues() {
        // Every vertex is enqueued at most once: total iterations' frontier
        // sizes sum to the reached-vertex count. We check via levels: all
        // reached vertices have consistent levels (checked against
        // reference) and the run terminates within diameter+1 iterations.
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        let src = Dataset::SmallWorld.source(&g);
        let want = bfs_levels(&g, src);
        let depth = want.iter().filter(|&&l| l != INF).max().copied().unwrap();
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out =
            run_bfs_queue(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();
        assert_eq!(out.levels, want);
        assert_eq!(out.run.iterations, depth + 1);
    }
}
