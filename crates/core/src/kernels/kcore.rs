//! k-core decomposition by parallel peeling.
//!
//! The core number of a vertex is the largest k such that it belongs to a
//! subgraph where every vertex has degree ≥ k. The ParK-style parallel
//! peel: for k = 0, 1, 2, …, repeatedly remove alive vertices whose
//! residual degree is ≤ k (they get core number k) and atomically
//! decrement their alive neighbors' degrees, until the level drains; the
//! decrement scatter is the familiar irregular neighbor loop, mapped
//! per-thread (baseline) or per-virtual-warp.
//!
//! Peeling a high-diameter mesh cascades one layer per round, so (like
//! every round-synchronous peel on a GPU) this targets the short-cascade
//! graph classes; the tests use those.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    load_row_range, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

/// Core number of not-yet-peeled vertices during the run.
const PENDING: u32 = u32::MAX;

/// Result of a k-core decomposition.
#[derive(Clone, Debug)]
pub struct KcoreOutput {
    /// Per-vertex core numbers.
    pub core: Vec<u32>,
    /// The degeneracy (maximum core number; 0 for an edgeless graph).
    pub degeneracy: u32,
    /// Execution record.
    pub run: AlgoRun,
}

/// Sequential reference peel (bucket-free, O(rounds·n), fine at test
/// sizes).
pub fn kcore_reference(g: &maxwarp_graph::Csr) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut deg: Vec<i64> = (0..n as u32).map(|v| g.degree(v) as i64).collect();
    let mut core = vec![u32::MAX; n];
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        let mut peeled_any = true;
        while peeled_any {
            peeled_any = false;
            for v in 0..n {
                if core[v] == u32::MAX && deg[v] <= k as i64 {
                    core[v] = k;
                    remaining -= 1;
                    peeled_any = true;
                    for &u in g.neighbors(v as u32) {
                        deg[u as usize] -= 1;
                    }
                }
            }
        }
        k += 1;
    }
    core
}

struct KcoreState {
    deg: DevPtr<u32>,
    core: DevPtr<u32>,
    pending: DevPtr<u32>,
    changed: DevPtr<u32>,
}

/// Run k-core decomposition on a *symmetric* graph.
pub fn run_kcore(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    method: Method,
    exec: &ExecConfig,
) -> Result<KcoreOutput, LaunchError> {
    if let Method::WarpCentric(o) = method {
        assert!(
            o.defer_threshold.is_none(),
            "outlier deferral is not wired into the k-core kernels"
        );
    }
    let n = g.n;
    let host_deg: Vec<u32> = {
        // Degrees derived from row offsets on the host (a trivial map
        // kernel in CUDA; free setup here).
        let offs = gpu.mem.download(g.row_offsets);
        offs.windows(2).map(|w| w[1] - w[0]).collect()
    };
    let st = KcoreState {
        deg: gpu.mem.alloc_from(&host_deg),
        core: gpu.mem.alloc::<u32>(n.max(1)),
        pending: gpu.mem.alloc::<u32>(n.max(1)),
        changed: gpu.mem.alloc::<u32>(1),
    };
    gpu.mem.fill(st.core, PENDING);
    // Real cudaMalloc memory is uninitialized; the peel loop reads
    // `pending` before the first mark kernel writes it.
    gpu.mem.fill(st.pending, 0u32);

    let mut run = AlgoRun::default();
    let mut k = 0u32;
    let mut peeled_total = 0u32;
    let mut guard = 0u32;
    while peeled_total < n {
        // Drain level k: mark-then-decrement rounds until no vertex is
        // peelable at this k.
        loop {
            run.begin_iteration();
            gpu.mem.write(st.changed, 0, 0u32);
            let s1 = launch_mark(gpu, g, &st, k, exec)?;
            run.absorb(&s1);
            if gpu.mem.read(st.changed, 0) == 0 {
                break;
            }
            let (s2, peeled) = launch_decrement(gpu, g, &st, method, exec)?;
            run.absorb(&s2);
            peeled_total += peeled;
            guard += 1;
            check_iteration_bound(gpu, "kcore", guard, 4 * n)?;
        }
        k += 1;
        check_iteration_bound(gpu, "kcore-k", k, n)?;
    }

    let core = gpu.mem.download(st.core);
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    Ok(KcoreOutput {
        core,
        degeneracy,
        run,
    })
}

/// Mark alive vertices with residual degree ≤ k: they take core number k
/// and a pending flag (a uniform map kernel).
fn launch_mark(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &KcoreState,
    k: u32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let n = g.n;
    let (deg, core, pending, changed) = (st.deg, st.core, st.pending, st.changed);
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, n);
            if m.none() {
                return;
            }
            let c = w.ld(m, core, &vid);
            let alive = w.alu_pred(m, &c, |x| x == PENDING);
            if alive.none() {
                return;
            }
            let d = w.ld(alive, deg, &vid);
            let peel = w.alu_pred(alive, &d, |x| x <= k);
            if peel.any() {
                w.st(peel, core, &vid, &Lanes::splat(k));
                w.st(peel, pending, &vid, &Lanes::splat(1u32));
                w.st_uniform(peel, changed, 0, 1);
            }
        });
    };
    gpu.launch(
        n.div_ceil(exec.block_threads).max(1),
        exec.block_threads,
        &kernel,
    )
}

/// Decrement alive neighbors of pending vertices; clears the pending
/// flags. Returns the number of vertices processed (read back from a
/// device counter).
fn launch_decrement(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &KcoreState,
    method: Method,
    exec: &ExecConfig,
) -> Result<(maxwarp_simt::KernelStats, u32), LaunchError> {
    let g = *g;
    let n = g.n;
    let (deg, core, pending) = (st.deg, st.core, st.pending);
    let counter = gpu.mem.alloc::<u32>(1);

    // Per-edge action: decrement alive neighbors (wrapping add of -1 —
    // exactly what atomicSub compiles to).
    let body = move |w: &mut WarpCtx<'_>, act: Mask, i: &Lanes<u32>| {
        let nbr = w.ld(act, g.col_indices, i);
        let nc = w.ld(act, core, &nbr);
        let m_alive = w.alu_pred(act, &nc, |x| x == PENDING);
        if m_alive.any() {
            let _ = w.atomic_add(m_alive, deg, &nbr, &Lanes::splat(u32::MAX));
        }
    };

    let stats = match method {
        Method::Baseline => {
            let kernel = move |b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let vid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &vid, n);
                    if m.none() {
                        return;
                    }
                    let p = w.ld(m, pending, &vid);
                    let mp = w.alu_pred(m, &p, |x| x == 1);
                    if mp.none() {
                        return;
                    }
                    w.st(mp, pending, &vid, &Lanes::splat(0u32));
                    // One count per peeled vertex (one vertex per lane).
                    let _ = w.atomic_add(mp, counter, &Lanes::splat(0u32), &Lanes::splat(1u32));
                    let (s, e) = load_row_range(w, &g, mp, &vid);
                    scalar_neighbor_loop(w, mp, &s, &e, body);
                });
            };
            gpu.launch(
                n.div_ceil(exec.block_threads).max(1),
                exec.block_threads,
                &kernel,
            )?
        }
        Method::WarpCentric(opts) => {
            let layout = VwLayout::new(opts.vw);
            let vpp = vertices_per_pass(&layout);
            let chunk = exec.chunk_vertices.max(vpp);
            let num_tasks = n.div_ceil(chunk);
            let grid = exec.resident_grid(&gpu.cfg);
            gpu.launch_warp_tasks(
                grid,
                exec.block_threads,
                num_tasks,
                opts.schedule(),
                move |w, task| {
                    let chunk_base = task * chunk;
                    let chunk_end = (chunk_base + chunk).min(n);
                    let mut base = chunk_base;
                    while base < chunk_end {
                        let vids = layout.task_ids(base);
                        let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                        if m.none() {
                            break;
                        }
                        let p = w.ld(m, pending, &vids);
                        let mp = w.alu_pred(m, &p, |x| x == 1);
                        if mp.any() {
                            let leaders = mp & layout.leaders;
                            w.st(leaders, pending, &vids, &Lanes::splat(0u32));
                            let _ = w.atomic_add(
                                leaders,
                                counter,
                                &Lanes::splat(0u32),
                                &Lanes::splat(1u32),
                            );
                            let (s, e) = load_row_range(w, &g, mp, &vids);
                            vw_neighbor_loop(w, &layout, mp, &s, &e, body);
                        }
                        base += vpp;
                    }
                },
            )?
        }
    };
    let peeled = gpu.mem.read(counter, 0);
    Ok((stats, peeled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn check(g: &maxwarp_graph::Csr, name: &str) {
        let want = kcore_reference(g);
        for m in [Method::Baseline, Method::warp(8)] {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, g);
            let out = run_kcore(&mut gpu, &dg, m, &ExecConfig::default()).unwrap();
            assert_eq!(out.core, want, "{name} / {}", m.label());
        }
    }

    #[test]
    fn reference_on_known_graphs() {
        // A triangle with a tail: triangle vertices are 2-core, tail 1.
        let g = maxwarp_graph::Csr::from_edges(
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 0),
                (0, 2),
                (2, 3),
                (3, 2),
            ],
        );
        assert_eq!(kcore_reference(&g), vec![2, 2, 2, 1]);
        // K5: everyone is 4-core.
        let mut e5 = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    e5.push((a, b));
                }
            }
        }
        let k5 = maxwarp_graph::Csr::from_edges(5, &e5);
        assert_eq!(kcore_reference(&k5), vec![4; 5]);
    }

    #[test]
    fn matches_reference_on_social() {
        let g = Dataset::LiveJournalLike.build(Scale::Tiny);
        check(&g, "lj");
    }

    #[test]
    fn matches_reference_on_smallworld() {
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        check(&g, "smallworld");
    }

    #[test]
    fn isolated_vertices_are_zero_core() {
        let g = maxwarp_graph::Csr::from_edges(5, &[(0, 1), (1, 0)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_kcore(&mut gpu, &dg, Method::warp(4), &ExecConfig::default()).unwrap();
        assert_eq!(out.core, vec![1, 1, 0, 0, 0]);
        assert_eq!(out.degeneracy, 1);
    }
}
