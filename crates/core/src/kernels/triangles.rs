//! Triangle counting — the workload the paper's authors revisited in
//! later work (Sevenich, Hong et al.), included here as the third
//! demonstration of the warp-centric mapping beyond traversals.
//!
//! Input is a *forward-oriented* graph (each undirected edge once, sorted
//! neighbor lists — see [`maxwarp_graph::triangles`]). The task unit is a
//! forward edge `(u, v)`; its triangle contribution is
//! `|N+(u) ∩ N+(v)|`.
//!
//! * **Baseline**: one thread per forward edge running a two-pointer merge
//!   — per-lane trip counts vary with `deg(u) + deg(v)`, the usual
//!   imbalance, and every lane walks two unrelated lists (scattered
//!   loads).
//! * **Warp-centric**: one virtual warp per forward edge — lanes stride
//!   `N+(v)` together and each binary-searches `N+(u)`; trip counts
//!   collapse to `ceil(deg(v)/K) × log deg(u)` and the strided loads
//!   coalesce.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::load_row_range;
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::AlgoRun;
use crate::vwarp::VwLayout;
use maxwarp_graph::{forward_graph, Csr, Orientation};
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask};

/// Result of a triangle-count run.
#[derive(Clone, Debug)]
pub struct TriangleOutput {
    /// Number of triangles.
    pub count: u64,
    /// Execution record.
    pub run: AlgoRun,
}

/// Forward graph + per-edge source array on the device.
struct FwdDevice {
    g: DeviceGraph,
    edge_src: DevPtr<u32>,
    counter: DevPtr<u32>,
}

fn upload_forward(gpu: &mut Gpu, fwd: &Csr) -> FwdDevice {
    let g = DeviceGraph::upload(gpu, fwd);
    let mut src = Vec::with_capacity(fwd.num_edges() as usize);
    for u in 0..fwd.num_vertices() {
        src.extend(std::iter::repeat_n(u, fwd.degree(u) as usize));
    }
    FwdDevice {
        g,
        edge_src: gpu.mem.alloc_from(&src),
        counter: gpu.mem.alloc::<u32>(1),
    }
}

/// Count triangles of a *symmetric* graph with the given method.
///
/// ```
/// use maxwarp::{run_triangles, ExecConfig, Method};
/// use maxwarp_graph::Orientation;
/// use maxwarp_simt::{Gpu, GpuConfig};
///
/// // A triangle 0-1-2 with a pendant vertex 3.
/// let g = maxwarp_graph::Csr::from_edges(
///     4,
///     &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (2, 3), (3, 2)],
/// );
/// let mut gpu = Gpu::new(GpuConfig::tiny_test());
/// let out = run_triangles(&mut gpu, &g, Method::warp(8), &ExecConfig::default(),
///                         Orientation::ByDegree).unwrap();
/// assert_eq!(out.count, 1);
/// ```
pub fn run_triangles(
    gpu: &mut Gpu,
    g: &Csr,
    method: Method,
    exec: &ExecConfig,
    orientation: Orientation,
) -> Result<TriangleOutput, LaunchError> {
    if let Method::WarpCentric(o) = method {
        assert!(
            o.defer_threshold.is_none(),
            "outlier deferral does not apply to triangle counting"
        );
    }
    let fwd = forward_graph(g, orientation);
    let dev = upload_forward(gpu, &fwd);
    let mut run = AlgoRun::default();
    run.begin_iteration();
    let stats = match method {
        Method::Baseline => launch_baseline(gpu, &dev, exec)?,
        Method::WarpCentric(opts) => launch_warp(gpu, &dev, opts, exec)?,
    };
    run.absorb(&stats);
    let count = gpu.mem.read(dev.counter, 0) as u64;
    Ok(TriangleOutput { count, run })
}

/// Thread-per-edge two-pointer merge.
fn launch_baseline(
    gpu: &mut Gpu,
    dev: &FwdDevice,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, edge_src, counter) = (dev.g, dev.edge_src, dev.counter);
    let m_edges = g.m;
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let eid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &eid, m_edges);
            if m.none() {
                return;
            }
            let u = w.ld(m, edge_src, &eid);
            let v = w.ld(m, g.col_indices, &eid);
            let (su, eu) = load_row_range(w, &g, m, &u);
            let (sv, ev) = load_row_range(w, &g, m, &v);

            let mut i = su;
            let mut j = sv;
            let mut cnt = Lanes::splat(0u32);
            let li = w.lt(m, &i, &eu);
            let lj = w.lt(m, &j, &ev);
            let mut act = li & lj;
            while act.any() {
                let a = w.ld(act, g.col_indices, &i);
                let bb = w.ld(act, g.col_indices, &j);
                let a_lt = w.lt(act, &a, &bb);
                let b_lt = w.lt(act, &bb, &a);
                let eq = act.andnot(a_lt).andnot(b_lt);
                if eq.any() {
                    let c2 = w.alu1(eq, &cnt, |c| c + 1);
                    cnt = c2.select(eq, &cnt);
                }
                // Advance i where a <= b, j where b <= a.
                let adv_i = act.andnot(b_lt);
                let adv_j = act.andnot(a_lt);
                let i2 = w.add_scalar(adv_i, &i, 1);
                i = i2.select(adv_i, &i);
                let j2 = w.add_scalar(adv_j, &j, 1);
                j = j2.select(adv_j, &j);
                let li = w.lt(act, &i, &eu);
                let lj = w.lt(act, &j, &ev);
                act = li & lj;
            }
            // Warp-reduce the per-lane counts, one atomic per warp.
            let total = w.reduce_add(m, &cnt);
            if total > 0 {
                let _ = w.atomic_add_uniform(m, counter, 0, total);
            }
        });
    };
    let grid = m_edges.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

/// Virtual-warp-per-edge: lanes stride `N+(v)`, binary-searching `N+(u)`.
fn launch_warp(
    gpu: &mut Gpu,
    dev: &FwdDevice,
    opts: WarpCentricOpts,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, edge_src, counter) = (dev.g, dev.edge_src, dev.counter);
    let m_edges = g.m;
    let layout = VwLayout::new(opts.vw);
    let vpp = layout.vw.per_physical();
    let k = layout.vw.k();
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = m_edges.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);

    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(m_edges);
            let mut base = chunk_base;
            let mut warp_cnt = Lanes::splat(0u32);
            let mut any_work = Mask::NONE;
            while base < chunk_end {
                let eid = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &eid, chunk_end);
                if m.none() {
                    break;
                }
                any_work |= m;
                let u = w.ld(m, edge_src, &eid);
                let v = w.ld(m, g.col_indices, &eid);
                let (su, eu) = load_row_range(w, &g, m, &u);
                let (sv, ev) = load_row_range(w, &g, m, &v);

                // SIMD phase: lanes stride N+(v).
                let mut idx = w.add(m, &sv, &layout.lane_in_vw);
                let mut act = w.lt(m, &idx, &ev);
                while act.any() {
                    let x = w.ld(act, g.col_indices, &idx);
                    // Binary search x in N+(u) = cols[su..eu].
                    let mut lo = su;
                    let mut hi = eu;
                    let mut found = Mask::NONE;
                    let mut searching = act & w.lt(act, &lo, &hi);
                    while searching.any() {
                        let mid = w.alu2(searching, &lo, &hi, |l, h| l + (h - l) / 2);
                        let a = w.ld(searching, g.col_indices, &mid);
                        let a_lt = w.lt(searching, &a, &x);
                        let x_lt = w.lt(searching, &x, &a);
                        let eq = searching.andnot(a_lt).andnot(x_lt);
                        found |= eq;
                        // lo = mid+1 where a < x; hi = mid where x < a;
                        // matched lanes leave the loop.
                        let lo2 = w.add_scalar(a_lt, &mid, 1);
                        lo = lo2.select(a_lt, &lo);
                        hi = mid.select(x_lt, &hi);
                        searching = searching.andnot(eq) & w.lt(searching, &lo, &hi);
                    }
                    if found.any() {
                        let c2 = w.alu1(found, &warp_cnt, |c| c + 1);
                        warp_cnt = c2.select(found, &warp_cnt);
                    }
                    idx = w.add_scalar(act, &idx, k);
                    act = act & w.lt(act, &idx, &ev);
                }
                base += vpp;
            }
            if any_work.any() {
                // Inactive lanes hold zero counts, so reduce the full warp.
                let total = w.reduce_add(Mask::FULL, &warp_cnt);
                if total > 0 {
                    let _ = w.atomic_add_uniform(Mask::FULL, counter, 0, total);
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwarp::VirtualWarp;
    use maxwarp_graph::{count_triangles, erdos_renyi, small_world, Dataset, Scale};
    use maxwarp_simt::GpuConfig;

    fn methods() -> Vec<Method> {
        vec![
            Method::Baseline,
            Method::warp(4),
            Method::warp(32),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(8)).with_dynamic()),
        ]
    }

    fn check(g: &Csr, name: &str) {
        let want = count_triangles(g);
        for method in methods() {
            for orientation in [Orientation::ById, Orientation::ByDegree] {
                let mut gpu = Gpu::new(GpuConfig::tiny_test());
                let out = run_triangles(&mut gpu, g, method, &ExecConfig::default(), orientation)
                    .unwrap();
                assert_eq!(
                    out.count,
                    want,
                    "{name} / {} / {orientation:?}",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn correct_on_dense_er() {
        let g = erdos_renyi(300, 6000, 3).symmetrize();
        assert!(count_triangles(&g) > 100);
        check(&g, "er");
    }

    #[test]
    fn correct_on_small_world() {
        // Ring lattices are triangle-rich by construction.
        let g = small_world(600, 4, 0.05, 2);
        assert!(count_triangles(&g) > 100);
        check(&g, "smallworld");
    }

    #[test]
    fn correct_on_social_dataset() {
        let g = Dataset::LiveJournalLike.build(Scale::Tiny);
        check(&g, "lj");
    }

    #[test]
    fn triangle_free_mesh_counts_zero() {
        let g = Dataset::RoadNet.build(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let out = run_triangles(
            &mut gpu,
            &g,
            Method::warp(8),
            &ExecConfig::default(),
            Orientation::ByDegree,
        )
        .unwrap();
        assert_eq!(out.count, 0);
    }

    #[test]
    fn warp_centric_improves_utilization_on_skewed_graph() {
        let g = Dataset::LiveJournalLike.build(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let base = run_triangles(
            &mut gpu,
            &g,
            Method::Baseline,
            &ExecConfig::default(),
            Orientation::ByDegree,
        )
        .unwrap();
        let mut gpu2 = Gpu::new(GpuConfig::fermi_c2050());
        let warp = run_triangles(
            &mut gpu2,
            &g,
            Method::warp(8),
            &ExecConfig::default(),
            Orientation::ByDegree,
        )
        .unwrap();
        assert_eq!(base.count, warp.count);
        assert!(
            warp.run.stats.lane_utilization() > base.run.stats.lane_utilization(),
            "warp {} vs base {}",
            warp.run.stats.lane_utilization(),
            base.run.stats.lane_utilization()
        );
    }
}
