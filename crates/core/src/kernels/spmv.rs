//! Sparse matrix-vector product (CSR SpMV) — the HPC kernel the
//! warp-centric mapping was folklore for even before the paper
//! (vector-CSR in Bell & Garland's SpMV work). `y = A·x` where `A` is the
//! graph's adjacency structure with `f32` edge values.
//!
//! * **Baseline (scalar CSR)**: one thread per row accumulates its dot
//!   product serially — row-length variance is warp imbalance.
//! * **Warp-centric (vector CSR)**: a K-lane virtual warp strides each
//!   row, then reduces its partials with a segmented shuffle tree and the
//!   leader writes the result.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{load_row_range, vertices_per_pass};
use crate::method::{ExecConfig, Method};
use crate::runner::AlgoRun;
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask};

/// Result of an SpMV run.
#[derive(Clone, Debug)]
pub struct SpmvOutput {
    /// `y = A·x`.
    pub y: Vec<f32>,
    /// Execution record.
    pub run: AlgoRun,
}

/// Sequential reference.
pub fn spmv_reference(g: &maxwarp_graph::Csr, values: &[f32], x: &[f32]) -> Vec<f32> {
    assert_eq!(values.len() as u64, g.num_edges());
    assert_eq!(x.len() as u32, g.num_vertices());
    (0..g.num_vertices())
        .map(|r| {
            let row = g.row_offsets()[r as usize] as usize;
            g.neighbors(r)
                .iter()
                .enumerate()
                .map(|(k, &c)| values[row + k] * x[c as usize])
                .sum()
        })
        .collect()
}

/// Run `y = A·x` on the device. `values` are the per-edge matrix entries
/// (aligned with `col_indices`), `x` the input vector.
pub fn run_spmv(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    values: &[f32],
    x: &[f32],
    method: Method,
    exec: &ExecConfig,
) -> Result<SpmvOutput, LaunchError> {
    assert_eq!(values.len() as u32, g.m, "one value per edge");
    assert_eq!(x.len() as u32, g.n, "x must have n entries");
    if let Method::WarpCentric(o) = method {
        assert!(
            o.defer_threshold.is_none() && !o.dynamic,
            "SpMV supports plain static warp-centric execution"
        );
    }
    let d_vals = gpu.mem.alloc_from(values);
    let d_x = gpu.mem.alloc_from(x);
    let d_y = gpu.mem.alloc::<f32>(g.n.max(1));

    let mut run = AlgoRun::default();
    run.begin_iteration();
    let stats = match method {
        Method::Baseline => launch_scalar(gpu, g, d_vals, d_x, d_y, exec)?,
        Method::WarpCentric(opts) => {
            launch_vector(gpu, g, d_vals, d_x, d_y, VwLayout::new(opts.vw), exec)?
        }
    };
    run.absorb(&stats);
    Ok(SpmvOutput {
        y: gpu.mem.download(d_y),
        run,
    })
}

/// Scalar CSR: thread per row.
fn launch_scalar(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    vals: DevPtr<f32>,
    x: DevPtr<f32>,
    y: DevPtr<f32>,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let n = g.n;
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let row = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &row, n);
            if m.none() {
                return;
            }
            let (s, e) = load_row_range(w, &g, m, &row);
            let mut acc = Lanes::splat(0.0f32);
            let mut i = s;
            let mut act = w.lt(m, &i, &e);
            while act.any() {
                let c = w.ld(act, g.col_indices, &i);
                let a = w.ld(act, vals, &i);
                let xv = w.ld(act, x, &c);
                let prod = w.alu2(act, &a, &xv, |p, q| p * q);
                let acc2 = w.alu2(act, &acc, &prod, |p, q| p + q);
                acc = acc2.select(act, &acc);
                i = w.add_scalar(act, &i, 1);
                act = act & w.lt(act, &i, &e);
            }
            w.st(m, y, &row, &acc);
        });
    };
    gpu.launch(
        n.div_ceil(exec.block_threads).max(1),
        exec.block_threads,
        &kernel,
    )
}

/// Vector CSR: virtual warp per row, segmented reduction, leader store.
fn launch_vector(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    vals: DevPtr<f32>,
    x: DevPtr<f32>,
    y: DevPtr<f32>,
    layout: VwLayout,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let n = g.n;
    let vpp = vertices_per_pass(&layout);
    let k = layout.vw.k();
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = n.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);
    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        maxwarp_simt::TaskSchedule::StaticBlocked,
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(n);
            let mut base = chunk_base;
            while base < chunk_end {
                let rows = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &rows, chunk_end);
                if m.none() {
                    break;
                }
                let (s, e) = load_row_range(w, &g, m, &rows);
                let mut acc = Lanes::splat(0.0f32);
                let mut i = w.add(m, &s, &layout.lane_in_vw);
                let mut act = w.lt(m, &i, &e);
                while act.any() {
                    let c = w.ld(act, g.col_indices, &i);
                    let a = w.ld(act, vals, &i);
                    let xv = w.ld(act, x, &c);
                    let prod = w.alu2(act, &a, &xv, |p, q| p * q);
                    let acc2 = w.alu2(act, &acc, &prod, |p, q| p + q);
                    acc = acc2.select(act, &acc);
                    i = w.add_scalar(act, &i, k);
                    act = act & w.lt(act, &i, &e);
                }
                let total = w.seg_reduce_add_f32(m, &acc, k as usize);
                let leaders = m & layout.leaders;
                w.st(leaders, y, &rows, &total);
                base += vpp;
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::{random_weights, Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn inputs(g: &maxwarp_graph::Csr, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let vals: Vec<f32> = random_weights(g, 8, seed)
            .into_iter()
            .map(|w| w as f32 * 0.25)
            .collect();
        let x: Vec<f32> = (0..g.num_vertices())
            .map(|v| (v % 7) as f32 - 3.0)
            .collect();
        (vals, x)
    }

    fn check(d: Dataset, tol: f32) {
        let g = d.build(Scale::Tiny);
        let (vals, x) = inputs(&g, 5);
        let want = spmv_reference(&g, &vals, &x);
        for m in [Method::Baseline, Method::warp(4), Method::warp(32)] {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = crate::DeviceGraph::upload(&mut gpu, &g);
            let out = run_spmv(&mut gpu, &dg, &vals, &x, m, &ExecConfig::default()).unwrap();
            for (r, &w) in want.iter().enumerate() {
                let err = (out.y[r] - w).abs() / w.abs().max(1.0);
                assert!(
                    err < tol,
                    "{} / {} row {r}: {} vs {}",
                    d.name(),
                    m.label(),
                    out.y[r],
                    w
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_random() {
        check(Dataset::Random, 1e-4);
    }

    #[test]
    fn matches_reference_on_hub_graph() {
        check(Dataset::WikiTalkLike, 1e-3);
    }

    #[test]
    fn matches_reference_on_mesh() {
        check(Dataset::RoadNet, 1e-5);
    }

    #[test]
    fn empty_rows_produce_zero() {
        let g = maxwarp_graph::Csr::from_edges(4, &[(0, 1)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = crate::DeviceGraph::upload(&mut gpu, &g);
        let out = run_spmv(
            &mut gpu,
            &dg,
            &[2.0],
            &[1.0, 5.0, 0.0, 0.0],
            Method::warp(8),
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(out.y, vec![10.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn vector_csr_improves_utilization_on_skew() {
        let g = Dataset::LiveJournalLike.build(Scale::Tiny);
        let (vals, x) = inputs(&g, 7);
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = crate::DeviceGraph::upload(&mut gpu, &g);
        let base = run_spmv(
            &mut gpu,
            &dg,
            &vals,
            &x,
            Method::Baseline,
            &ExecConfig::default(),
        )
        .unwrap();
        let mut gpu2 = Gpu::new(GpuConfig::fermi_c2050());
        let dg2 = crate::DeviceGraph::upload(&mut gpu2, &g);
        let warp = run_spmv(
            &mut gpu2,
            &dg2,
            &vals,
            &x,
            Method::warp(16),
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(
            warp.run.cycles() < base.run.cycles(),
            "warp {} vs base {}",
            warp.run.cycles(),
            base.run.cycles()
        );
        assert!(warp.run.stats.lane_utilization() > base.run.stats.lane_utilization());
    }

    #[test]
    #[should_panic(expected = "one value per edge")]
    fn mismatched_values_rejected() {
        let g = maxwarp_graph::Csr::from_edges(2, &[(0, 1)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = crate::DeviceGraph::upload(&mut gpu, &g);
        let _ = run_spmv(
            &mut gpu,
            &dg,
            &[1.0, 2.0],
            &[0.0, 0.0],
            Method::Baseline,
            &ExecConfig::default(),
        );
    }
}
