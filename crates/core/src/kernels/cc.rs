//! Connected components by iterative min-label propagation.
//!
//! Every round, each vertex pushes its current label to its neighbors with
//! `atomicMin`; rounds repeat until a fixpoint. On a symmetric graph the
//! labels converge to each component's minimum vertex id (the same answer
//! as the union-find reference). Directed input is accepted but, as with
//! any propagation-based CC, only symmetric graphs yield *connected*
//! (rather than reachability-closed) components — the drivers in the
//! harness symmetrize first.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    defer_outliers, load_row_range, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx, WARP_SIZE};

/// Result of a connected-components run.
#[derive(Clone, Debug)]
pub struct CcOutput {
    /// Per-vertex component labels (component minimum vertex id).
    pub labels: Vec<u32>,
    /// Execution record.
    pub run: AlgoRun,
}

/// Device-side working state of a CC run. Public so external drivers (the
/// sharded BSP executor) can seed labels and step rounds themselves.
pub struct CcState {
    /// Per-vertex component labels.
    pub labels: DevPtr<u32>,
    /// Device changed flag, reset each round.
    pub changed: DevPtr<u32>,
    /// Deferred-outlier queue.
    pub queue: DevPtr<u32>,
    /// Deferred-outlier count.
    pub qcount: DevPtr<u32>,
}

impl CcState {
    /// Allocate state with every vertex labeled by its own id.
    pub fn new(gpu: &mut Gpu, g: &DeviceGraph) -> CcState {
        let init: Vec<u32> = (0..g.n).collect();
        CcState::with_labels(gpu, g, &init)
    }

    /// Allocate state from an explicit host-side label array. Host init
    /// issues no kernel launches, so `KernelStats` stay untouched.
    pub fn with_labels(gpu: &mut Gpu, g: &DeviceGraph, init: &[u32]) -> CcState {
        assert_eq!(init.len(), g.n as usize, "one label per vertex");
        let labels = gpu.mem.alloc::<u32>(g.n.max(1));
        gpu.mem.upload(labels, init);
        CcState {
            labels,
            changed: gpu.mem.alloc::<u32>(1),
            queue: gpu.mem.alloc::<u32>(g.n.max(1)),
            qcount: gpu.mem.alloc::<u32>(1),
        }
    }
}

/// One min-label propagation round: reset the flags, push every vertex's
/// label across its edges (plus the deferred-outlier pass when requested),
/// absorb the launch stats into `run`, and report whether any label
/// improved. [`run_cc`] is exactly a loop over this function.
pub fn cc_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &CcState,
    method: Method,
    exec: &ExecConfig,
    run: &mut AlgoRun,
) -> Result<bool, LaunchError> {
    run.begin_iteration();
    gpu.mem.write(st.changed, 0, 0u32);
    gpu.mem.write(st.qcount, 0, 0u32);

    let stats = match method {
        Method::Baseline => launch_baseline_round(gpu, g, st, exec)?,
        Method::WarpCentric(opts) => launch_warp_round(gpu, g, st, opts, exec)?,
    };
    run.absorb(&stats);

    if let Method::WarpCentric(opts) = method {
        if opts.defer_threshold.is_some() {
            let qc = gpu.mem.read(st.qcount, 0);
            if qc > 0 {
                let s = launch_outlier_round(gpu, g, st, qc, exec)?;
                run.absorb(&s);
            }
        }
    }

    Ok(gpu.mem.read(st.changed, 0) != 0)
}

/// Push source labels `lu` across the edges at indices `i`.
fn push_labels(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    labels: DevPtr<u32>,
    changed: DevPtr<u32>,
    lu: &Lanes<u32>,
    act: Mask,
    i: &Lanes<u32>,
) {
    let nbr = w.ld(act, g.col_indices, i);
    let old = w.atomic_min(act, labels, &nbr, lu);
    let improved = w.lt(act, lu, &old);
    if improved.any() {
        w.st_uniform(improved, changed, 0, 1);
    }
}

/// Run connected components with the given method.
pub fn run_cc(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    method: Method,
    exec: &ExecConfig,
) -> Result<CcOutput, LaunchError> {
    let st = CcState::new(gpu, g);
    let mut run = AlgoRun::default();
    let mut round = 0u32;
    loop {
        if !cc_round(gpu, g, &st, method, exec, &mut run)? {
            break;
        }
        round += 1;
        check_iteration_bound(gpu, "cc", round, g.n)?;
    }
    Ok(CcOutput {
        labels: gpu.mem.download(st.labels),
        run,
    })
}

fn launch_baseline_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &CcState,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, labels, changed) = (*g, st.labels, st.changed);
    let n = g.n;
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, n);
            if m.none() {
                return;
            }
            let lu = w.ld(m, labels, &vid);
            let (s, e) = load_row_range(w, &g, m, &vid);
            scalar_neighbor_loop(w, m, &s, &e, |w, act, i| {
                push_labels(w, &g, labels, changed, &lu, act, i);
            });
        });
    };
    let grid = n.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

fn launch_warp_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &CcState,
    opts: WarpCentricOpts,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, labels, changed, queue, qcount) = (*g, st.labels, st.changed, st.queue, st.qcount);
    let layout = VwLayout::new(opts.vw);
    let vpp = vertices_per_pass(&layout);
    let n = g.n;
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = n.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);

    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(n);
            let mut base = chunk_base;
            while base < chunk_end {
                let vids = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                if m.none() {
                    break;
                }
                let lu = w.ld(m, labels, &vids);
                let (s, e) = load_row_range(w, &g, m, &vids);
                let mwork = match opts.defer_threshold {
                    Some(t) => defer_outliers(w, &layout, m, &vids, &s, &e, t, queue, qcount),
                    None => m,
                };
                if mwork.any() {
                    vw_neighbor_loop(w, &layout, mwork, &s, &e, |w, act, i| {
                        push_labels(w, &g, labels, changed, &lu, act, i);
                    });
                }
                base += vpp;
            }
        },
    )
}

fn launch_outlier_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &CcState,
    qc: u32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, labels, changed, queue) = (*g, st.labels, st.changed, st.queue);
    let kernel = move |b: &mut BlockCtx<'_>| {
        let bid = b.block_id();
        let stride = b.num_blocks();
        let bthreads = b.threads_per_block();
        let mut qi = bid;
        while qi < qc {
            b.phase(|w| {
                let v = w.ld_uniform(Mask::FULL, queue, qi);
                let luv = w.ld_uniform(Mask::FULL, labels, v);
                let lu = Lanes::splat(luv);
                let s = w.ld_uniform(Mask::FULL, g.row_offsets, v);
                let e = w.ld_uniform(Mask::FULL, g.row_offsets, v + 1);
                let base = w.id().warp_in_block * WARP_SIZE as u32;
                let offs = Lanes::from_fn(|l| base + l as u32);
                let mut i = w.alu1(Mask::FULL, &offs, |o| s.wrapping_add(o));
                let endv = Lanes::splat(e);
                let mut act = w.lt(Mask::FULL, &i, &endv);
                while act.any() {
                    push_labels(w, &g, labels, changed, &lu, act, &i);
                    i = w.add_scalar(act, &i, bthreads);
                    act = w.lt(act, &i, &endv);
                }
            });
            qi += stride;
        }
    };
    let grid = qc.min(exec.resident_grid(&gpu.cfg));
    gpu.launch(grid, exec.block_threads, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwarp::VirtualWarp;
    use maxwarp_graph::reference::{connected_components, count_distinct};
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn methods() -> Vec<Method> {
        vec![
            Method::Baseline,
            Method::warp(8),
            Method::warp(32),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(8)).with_dynamic()),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(16)).with_defer(64)),
        ]
    }

    fn check_symmetric(g: &maxwarp_graph::Csr, name: &str) {
        let want = connected_components(g);
        for method in methods() {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, g);
            let out = run_cc(&mut gpu, &dg, method, &ExecConfig::default()).unwrap();
            assert_eq!(out.labels, want, "{name} / {}", method.label());
        }
    }

    #[test]
    fn correct_on_roadnet() {
        let g = Dataset::RoadNet.build(Scale::Tiny);
        check_symmetric(&g, "roadnet");
    }

    #[test]
    fn correct_on_symmetrized_rmat() {
        let g = Dataset::Rmat.build(Scale::Tiny).symmetrize();
        check_symmetric(&g, "rmat-sym");
    }

    #[test]
    fn correct_on_smallworld() {
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        check_symmetric(&g, "smallworld");
    }

    #[test]
    fn disconnected_components_found() {
        // Two 3-cliques and two isolated vertices.
        let mut edges = Vec::new();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    edges.push((a, b));
                    edges.push((a + 3, b + 3));
                }
            }
        }
        let g = maxwarp_graph::Csr::from_edges(8, &edges);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_cc(&mut gpu, &dg, Method::warp(4), &ExecConfig::default()).unwrap();
        assert_eq!(out.labels, vec![0, 0, 0, 3, 3, 3, 6, 7]);
        assert_eq!(count_distinct(&out.labels), 4);
    }

    #[test]
    fn empty_graph() {
        let g = maxwarp_graph::Csr::empty(16);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_cc(&mut gpu, &dg, Method::Baseline, &ExecConfig::default()).unwrap();
        assert_eq!(out.labels, (0..16u32).collect::<Vec<_>>());
        assert_eq!(out.run.iterations, 1);
    }
}
