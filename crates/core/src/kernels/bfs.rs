//! Breadth-first search — the paper's primary evaluation workload.
//!
//! Level-synchronous BFS with a level array and a device `changed` flag
//! (the Harish–Narayanan formulation the paper baselines against): one
//! kernel launch per level, terminating when a level produces no updates.
//!
//! * **Baseline**: one thread per vertex; each frontier thread walks its
//!   adjacency list serially ([`scalar_neighbor_loop`]).
//! * **Warp-centric**: one *virtual warp* per vertex; the K lanes stride
//!   the list together ([`vw_neighbor_loop`]), optionally deferring
//!   high-degree outliers to a block-cooperative second kernel and/or
//!   fetching vertex chunks from an atomic work counter (dynamic workload
//!   distribution).

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    defer_outliers, ld_cols_opt, load_row_range_opt, outlier_kernel, scalar_neighbor_loop,
    vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

/// Level value of unvisited vertices.
pub const INF: u32 = u32::MAX;

/// Result of a BFS run.
#[derive(Clone, Debug)]
pub struct BfsOutput {
    /// Per-vertex levels (`INF` = unreachable).
    pub levels: Vec<u32>,
    /// Execution record.
    pub run: AlgoRun,
}

/// Device-side working state of a BFS run. Public so external drivers
/// (the sharded BSP executor) can seed levels and step rounds themselves.
pub struct BfsState {
    /// Per-vertex level array (`INF` = unvisited).
    pub levels: DevPtr<u32>,
    /// Device changed flag, reset each round.
    pub changed: DevPtr<u32>,
    /// Deferred-outlier queue.
    pub queue: DevPtr<u32>,
    /// Deferred-outlier count.
    pub qcount: DevPtr<u32>,
}

impl BfsState {
    /// Allocate state with `src` at level 0 and everything else `INF`.
    pub fn new(gpu: &mut Gpu, g: &DeviceGraph, src: u32) -> BfsState {
        assert!(src < g.n, "source {src} out of range for n={}", g.n);
        let mut init = vec![INF; g.n as usize];
        init[src as usize] = 0;
        BfsState::from_levels(gpu, g, &init)
    }

    /// Allocate state from an explicit host-side level array (one entry per
    /// device vertex). Host init issues no kernel launches, so seeding this
    /// way leaves `KernelStats` untouched.
    pub fn from_levels(gpu: &mut Gpu, g: &DeviceGraph, init: &[u32]) -> BfsState {
        assert_eq!(init.len(), g.n as usize, "one level per vertex");
        let levels = gpu.mem.alloc::<u32>(g.n.max(1));
        gpu.mem.upload(levels, init);
        BfsState {
            levels,
            changed: gpu.mem.alloc::<u32>(1),
            queue: gpu.mem.alloc::<u32>(g.n.max(1)),
            qcount: gpu.mem.alloc::<u32>(1),
        }
    }
}

/// One level-synchronous BFS round: reset the flags, expand every vertex at
/// level `cur` (plus the deferred-outlier pass when the method requests
/// it), absorb the launch stats into `run`, and report whether any vertex
/// was claimed. [`run_bfs`] is exactly a loop over this function, so a
/// caller stepping rounds itself produces byte-identical levels and stats.
pub fn bfs_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &BfsState,
    cur: u32,
    method: Method,
    exec: &ExecConfig,
    run: &mut AlgoRun,
) -> Result<bool, LaunchError> {
    run.begin_iteration();
    gpu.mem.write(st.changed, 0, 0u32);
    gpu.mem.write(st.qcount, 0, 0u32);

    if gpu.profiling() {
        gpu.set_profile_label(&format!("bfs level {cur}"));
    }
    let stats = match method {
        Method::Baseline => launch_baseline_level(gpu, g, st, cur, exec)?,
        Method::WarpCentric(opts) => launch_warp_level(gpu, g, st, cur, opts, exec)?,
    };
    run.absorb(&stats);

    // Outlier pass: block-cooperative expansion of deferred vertices.
    if let Method::WarpCentric(opts) = method {
        if opts.defer_threshold.is_some() {
            let qc = gpu.mem.read(st.qcount, 0);
            if qc > 0 {
                let body =
                    bfs_edge_body(*g, st.levels, st.changed, cur + 1, exec.cached_graph_loads);
                let k = outlier_kernel(*g, st.queue, qc, body);
                let grid = qc.min(exec.resident_grid(&gpu.cfg));
                if gpu.profiling() {
                    gpu.set_profile_label(&format!("bfs level {cur} outliers"));
                }
                let s = gpu.launch(grid, exec.block_threads, &k)?;
                run.absorb(&s);
            }
        }
    }

    Ok(gpu.mem.read(st.changed, 0) != 0)
}

/// The per-edge action of a BFS expansion: claim unvisited neighbors at
/// level `next` and raise the changed flag.
fn bfs_edge_body(
    g: DeviceGraph,
    levels: DevPtr<u32>,
    changed: DevPtr<u32>,
    next: u32,
    cached: bool,
) -> impl Fn(&mut WarpCtx<'_>, Mask, &Lanes<u32>) + Copy {
    move |w, act, i| {
        let nbr = ld_cols_opt(w, &g, act, i, cached);
        let nlv = w.ld(act, levels, &nbr);
        let upd = w.alu_pred(act, &nlv, |x| x == INF);
        if upd.any() {
            w.st(upd, levels, &nbr, &Lanes::splat(next));
            w.st_uniform(upd, changed, 0, 1);
        }
    }
}

/// Run BFS from `src` using `method`. The graph must already be on the
/// device; working buffers are allocated fresh.
pub fn run_bfs(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    src: u32,
    method: Method,
    exec: &ExecConfig,
) -> Result<BfsOutput, LaunchError> {
    let st = BfsState::new(gpu, g, src);
    let mut run = AlgoRun::default();
    let mut cur = 0u32;
    loop {
        if !bfs_round(gpu, g, &st, cur, method, exec, &mut run)? {
            break;
        }
        cur += 1;
        check_iteration_bound(gpu, "bfs", cur, g.n)?;
    }
    Ok(BfsOutput {
        levels: gpu.mem.download(st.levels),
        run,
    })
}

/// One baseline (thread-per-vertex) level.
fn launch_baseline_level(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &BfsState,
    cur: u32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, levels, changed) = (*g, st.levels, st.changed);
    let n = g.n;
    let cached = exec.cached_graph_loads;
    let body = bfs_edge_body(g, levels, changed, cur + 1, cached);
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, n);
            if m.none() {
                return;
            }
            let lv = w.ld(m, levels, &vid);
            let mf = w.alu_pred(m, &lv, |x| x == cur);
            if mf.none() {
                return;
            }
            let (s, e) = load_row_range_opt(w, &g, mf, &vid, cached);
            scalar_neighbor_loop(w, mf, &s, &e, body);
        });
    };
    let grid = n.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

/// One virtual warp-centric level (as warp tasks over vertex chunks).
fn launch_warp_level(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &BfsState,
    cur: u32,
    opts: WarpCentricOpts,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, levels, changed, queue, qcount) = (*g, st.levels, st.changed, st.queue, st.qcount);
    let layout = VwLayout::new(opts.vw);
    let vpp = vertices_per_pass(&layout);
    let n = g.n;
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = n.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);
    let cached = exec.cached_graph_loads;
    let body = bfs_edge_body(g, levels, changed, cur + 1, cached);

    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(n);
            let mut base = chunk_base;
            while base < chunk_end {
                let vids = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                if m.none() {
                    break;
                }
                let lv = w.ld(m, levels, &vids);
                let mf = w.alu_pred(m, &lv, |x| x == cur);
                if mf.any() {
                    let (s, e) = load_row_range_opt(w, &g, mf, &vids, cached);
                    let mwork = match opts.defer_threshold {
                        Some(t) => defer_outliers(w, &layout, mf, &vids, &s, &e, t, queue, qcount),
                        None => mf,
                    };
                    if mwork.any() {
                        vw_neighbor_loop(w, &layout, mwork, &s, &e, body);
                    }
                }
                base += vpp;
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use maxwarp_graph::reference::bfs_levels;
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn all_methods() -> Vec<Method> {
        let mut ms = vec![Method::Baseline];
        for k in [1u32, 4, 8, 32] {
            ms.push(Method::warp(k));
        }
        ms.push(Method::WarpCentric(
            WarpCentricOpts::plain(crate::vwarp::VirtualWarp::new(8)).with_dynamic(),
        ));
        ms.push(Method::WarpCentric(
            WarpCentricOpts::plain(crate::vwarp::VirtualWarp::new(8)).with_defer(64),
        ));
        ms.push(Method::WarpCentric(
            WarpCentricOpts::plain(crate::vwarp::VirtualWarp::new(32))
                .with_dynamic()
                .with_defer(32),
        ));
        ms
    }

    fn check_dataset(d: Dataset) {
        let g = d.build(Scale::Tiny);
        let src = d.source(&g);
        let want = bfs_levels(&g, src);
        for method in all_methods() {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out = run_bfs(&mut gpu, &dg, src, method, &ExecConfig::default()).unwrap();
            assert_eq!(out.levels, want, "{} / {}", d.name(), method.label());
            assert!(out.run.cycles() > 0, "{}", method.label());
        }
    }

    #[test]
    fn correct_on_rmat() {
        check_dataset(Dataset::Rmat);
    }

    #[test]
    fn correct_on_random() {
        check_dataset(Dataset::Random);
    }

    #[test]
    fn correct_on_wikitalk_like() {
        check_dataset(Dataset::WikiTalkLike);
    }

    #[test]
    fn correct_on_roadnet() {
        check_dataset(Dataset::RoadNet);
    }

    #[test]
    fn correct_on_patents_like() {
        check_dataset(Dataset::PatentsLike);
    }

    #[test]
    fn isolated_source_terminates_immediately() {
        let g = maxwarp_graph::Csr::from_edges(64, &[(1, 2)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_bfs(&mut gpu, &dg, 0, Method::Baseline, &ExecConfig::default()).unwrap();
        assert_eq!(out.levels[0], 0);
        assert!(out.levels[1..].iter().all(|&l| l == INF));
        assert_eq!(out.run.iterations, 1);
    }

    #[test]
    fn iteration_cap_zero_returns_watchdog_error() {
        // A chain needs several BFS levels; with the iteration watchdog
        // capped at 0 the driver must surface a structured error (with
        // algorithm attribution) instead of looping or panicking.
        let g = maxwarp_graph::Csr::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut cfg = GpuConfig::tiny_test();
        cfg.watchdog.max_iterations = Some(0);
        let mut gpu = Gpu::new(cfg);
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let err = run_bfs(&mut gpu, &dg, 0, Method::Baseline, &ExecConfig::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("watchdog"), "{msg}");
        assert!(msg.contains("bfs"), "{msg}");
        assert!(
            matches!(
                err,
                maxwarp_simt::LaunchError::Fault(maxwarp_simt::SimtError::Watchdog(
                    maxwarp_simt::WatchdogKind::IterationBudget { budget: 0, .. }
                ))
            ),
            "{err:?}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let g = maxwarp_graph::Csr::from_edges(4, &[(0, 1)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let _ = run_bfs(&mut gpu, &dg, 10, Method::Baseline, &ExecConfig::default());
    }

    #[test]
    fn warp_centric_beats_baseline_on_hub_graph() {
        // The headline effect: on an extreme-hub graph the baseline warp
        // serializes a huge adjacency list on one lane.
        let g = Dataset::WikiTalkLike.build(Scale::Tiny);
        let src = Dataset::WikiTalkLike.source(&g);
        let cfg = GpuConfig::fermi_c2050();
        let run = |method: Method| {
            let mut gpu = Gpu::new(cfg.clone());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            run_bfs(&mut gpu, &dg, src, method, &ExecConfig::default())
                .unwrap()
                .run
                .cycles()
        };
        let base = run(Method::Baseline);
        let warp = run(Method::warp(32));
        assert!(
            warp * 2 < base,
            "vw32 ({warp}) should be >2x faster than baseline ({base}) on hub graph"
        );
    }

    #[test]
    fn baseline_utilization_lower_on_skewed_graph() {
        let g = Dataset::Rmat.build(Scale::Tiny);
        let src = Dataset::Rmat.source(&g);
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let base = run_bfs(&mut gpu, &dg, src, Method::Baseline, &ExecConfig::default()).unwrap();
        let mut gpu2 = Gpu::new(GpuConfig::fermi_c2050());
        let dg2 = DeviceGraph::upload(&mut gpu2, &g);
        let warp = run_bfs(
            &mut gpu2,
            &dg2,
            src,
            Method::warp(32),
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(
            base.run.stats.lane_utilization() < warp.run.stats.lane_utilization(),
            "baseline {} vs warp {}",
            base.run.stats.lane_utilization(),
            warp.run.stats.lane_utilization()
        );
    }

    #[test]
    fn warp_centric_coalesces_better_on_skewed_graph() {
        let g = Dataset::WikiTalkLike.build(Scale::Tiny);
        let src = Dataset::WikiTalkLike.source(&g);
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let base = run_bfs(&mut gpu, &dg, src, Method::Baseline, &ExecConfig::default()).unwrap();
        let mut gpu2 = Gpu::new(GpuConfig::fermi_c2050());
        let dg2 = DeviceGraph::upload(&mut gpu2, &g);
        let warp = run_bfs(
            &mut gpu2,
            &dg2,
            src,
            Method::warp(32),
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(
            warp.run.stats.tx_per_mem_instruction() < base.run.stats.tx_per_mem_instruction(),
            "warp {} vs baseline {}",
            warp.run.stats.tx_per_mem_instruction(),
            base.run.stats.tx_per_mem_instruction()
        );
    }

    /// The warp-hazard sanitizer is observational: a fig2-style BFS run with
    /// it enabled must report the exact same levels, per-launch stats, and
    /// cycle counts as a plain run — for every method.
    #[test]
    fn sanitized_runs_report_identical_stats() {
        let g = Dataset::Rmat.build(Scale::Tiny);
        let src = Dataset::Rmat.source(&g);
        for method in all_methods() {
            let run = |sanitize: bool| {
                let mut cfg = GpuConfig::fermi_c2050();
                cfg.sanitize = sanitize;
                let mut gpu = Gpu::new(cfg);
                let dg = DeviceGraph::upload(&mut gpu, &g);
                run_bfs(&mut gpu, &dg, src, method, &ExecConfig::default()).unwrap()
            };
            let plain = run(false);
            let sanitized = run(true);
            assert_eq!(
                plain.levels,
                sanitized.levels,
                "{}: results differ",
                method.label()
            );
            assert_eq!(
                plain.run.stats,
                sanitized.run.stats,
                "{}: KernelStats differ under the sanitizer",
                method.label()
            );
            assert_eq!(plain.run.iterations, sanitized.run.iterations);
        }
    }
}
