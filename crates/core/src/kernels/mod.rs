//! The graph-algorithm kernels, each in baseline (thread-per-vertex) and
//! virtual warp-centric variants.

pub(crate) mod common;

pub mod bc;
pub mod bfs;
pub mod bfs_hybrid;
pub mod bfs_queue;
pub mod cc;
pub mod coloring;
pub mod kcore;
pub mod msbfs;
pub mod pagerank;
pub mod spmv;
pub mod sssp;
pub mod triangles;
