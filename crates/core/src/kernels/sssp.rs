//! Single-source shortest paths (round-synchronous Bellman-Ford).
//!
//! Each round, every reached vertex relaxes its out-edges with
//! `atomicMin`; rounds repeat until no distance improves. Baseline and
//! virtual warp-centric variants differ exactly as in BFS: per-thread vs.
//! per-virtual-warp adjacency iteration.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    defer_outliers, load_row_range, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx, WARP_SIZE};

/// Distance of unreached vertices.
pub const INF: u32 = u32::MAX;

/// Result of an SSSP run.
#[derive(Clone, Debug)]
pub struct SsspOutput {
    /// Per-vertex distances (`INF` = unreachable).
    pub dist: Vec<u32>,
    /// Execution record.
    pub run: AlgoRun,
}

/// Device-side working state of an SSSP run. Public so external drivers
/// (the sharded BSP executor) can seed distances and step rounds
/// themselves.
pub struct SsspState {
    /// Per-vertex distances (`INF` = unreached).
    pub dist: DevPtr<u32>,
    /// Device changed flag, reset each round.
    pub changed: DevPtr<u32>,
    /// Deferred-outlier queue.
    pub queue: DevPtr<u32>,
    /// Deferred-outlier count.
    pub qcount: DevPtr<u32>,
}

impl SsspState {
    /// Allocate state with `src` at distance 0 and everything else `INF`.
    pub fn new(gpu: &mut Gpu, g: &DeviceGraph, src: u32) -> SsspState {
        assert!(src < g.n, "source {src} out of range for n={}", g.n);
        let mut init = vec![INF; g.n as usize];
        init[src as usize] = 0;
        SsspState::from_dist(gpu, g, &init)
    }

    /// Allocate state from an explicit host-side distance array. Host init
    /// issues no kernel launches, so `KernelStats` stay untouched.
    pub fn from_dist(gpu: &mut Gpu, g: &DeviceGraph, init: &[u32]) -> SsspState {
        assert_eq!(init.len(), g.n as usize, "one distance per vertex");
        let dist = gpu.mem.alloc::<u32>(g.n.max(1));
        gpu.mem.upload(dist, init);
        SsspState {
            dist,
            changed: gpu.mem.alloc::<u32>(1),
            queue: gpu.mem.alloc::<u32>(g.n.max(1)),
            qcount: gpu.mem.alloc::<u32>(1),
        }
    }
}

/// One Bellman-Ford relaxation round: reset the flags, relax the out-edges
/// of every reached vertex (plus the deferred-outlier pass when
/// requested), absorb the launch stats into `run`, and report whether any
/// distance improved. [`run_sssp`] is exactly a loop over this function.
#[allow(clippy::too_many_arguments)]
pub fn sssp_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    weights: DevPtr<u32>,
    st: &SsspState,
    round: u32,
    method: Method,
    exec: &ExecConfig,
    run: &mut AlgoRun,
) -> Result<bool, LaunchError> {
    run.begin_iteration();
    gpu.mem.write(st.changed, 0, 0u32);
    gpu.mem.write(st.qcount, 0, 0u32);

    if gpu.profiling() {
        gpu.set_profile_label(&format!("sssp round {round}"));
    }
    let stats = match method {
        Method::Baseline => launch_baseline_round(gpu, g, weights, st, exec)?,
        Method::WarpCentric(opts) => launch_warp_round(gpu, g, weights, st, opts, exec)?,
    };
    run.absorb(&stats);

    if let Method::WarpCentric(opts) = method {
        if opts.defer_threshold.is_some() {
            let qc = gpu.mem.read(st.qcount, 0);
            if qc > 0 {
                let s = launch_outlier_round(gpu, g, weights, st, qc, exec)?;
                run.absorb(&s);
            }
        }
    }

    Ok(gpu.mem.read(st.changed, 0) != 0)
}

/// Relax the edges at indices `i` from source distances `du`.
#[allow(clippy::too_many_arguments)]
fn relax_edges(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    weights: DevPtr<u32>,
    dist: DevPtr<u32>,
    changed: DevPtr<u32>,
    du: &Lanes<u32>,
    act: Mask,
    i: &Lanes<u32>,
) {
    let nbr = w.ld(act, g.col_indices, i);
    let wt = w.ld(act, weights, i);
    let nd = w.alu2(act, du, &wt, |d, x| d.saturating_add(x).min(INF - 1));
    let old = w.atomic_min(act, dist, &nbr, &nd);
    let improved = w.lt(act, &nd, &old);
    if improved.any() {
        w.st_uniform(improved, changed, 0, 1);
    }
}

/// Run SSSP from `src`. The device graph must carry weights
/// ([`DeviceGraph::upload_weighted`]).
///
/// ```
/// use maxwarp::{run_sssp, DeviceGraph, ExecConfig, Method};
/// use maxwarp_simt::{Gpu, GpuConfig};
///
/// // 0 --5--> 1 --2--> 2, plus a costly shortcut 0 --9--> 2.
/// let g = maxwarp_graph::Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
/// let mut gpu = Gpu::new(GpuConfig::tiny_test());
/// let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &[5, 9, 2]);
/// let out = run_sssp(&mut gpu, &dg, 0, Method::warp(8), &ExecConfig::default()).unwrap();
/// assert_eq!(out.dist, vec![0, 5, 7]); // detour beats the shortcut
/// ```
pub fn run_sssp(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    src: u32,
    method: Method,
    exec: &ExecConfig,
) -> Result<SsspOutput, LaunchError> {
    let Some(weights) = g.weights else {
        panic!("run_sssp requires a weighted device graph");
    };
    let st = SsspState::new(gpu, g, src);
    let mut run = AlgoRun::default();
    let mut round = 0u32;
    loop {
        if !sssp_round(gpu, g, weights, &st, round, method, exec, &mut run)? {
            break;
        }
        round += 1;
        check_iteration_bound(gpu, "sssp", round, g.n)?;
    }
    Ok(SsspOutput {
        dist: gpu.mem.download(st.dist),
        run,
    })
}

fn launch_baseline_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    weights: DevPtr<u32>,
    st: &SsspState,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, dist, changed) = (*g, st.dist, st.changed);
    let n = g.n;
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, n);
            if m.none() {
                return;
            }
            let du = w.ld(m, dist, &vid);
            let mf = w.alu_pred(m, &du, |d| d != INF);
            if mf.none() {
                return;
            }
            let (s, e) = load_row_range(w, &g, mf, &vid);
            scalar_neighbor_loop(w, mf, &s, &e, |w, act, i| {
                relax_edges(w, &g, weights, dist, changed, &du, act, i);
            });
        });
    };
    let grid = n.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

fn launch_warp_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    weights: DevPtr<u32>,
    st: &SsspState,
    opts: WarpCentricOpts,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, dist, changed, queue, qcount) = (*g, st.dist, st.changed, st.queue, st.qcount);
    let layout = VwLayout::new(opts.vw);
    let vpp = vertices_per_pass(&layout);
    let n = g.n;
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = n.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);

    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(n);
            let mut base = chunk_base;
            while base < chunk_end {
                let vids = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                if m.none() {
                    break;
                }
                let du = w.ld(m, dist, &vids);
                let mf = w.alu_pred(m, &du, |d| d != INF);
                if mf.any() {
                    let (s, e) = load_row_range(w, &g, mf, &vids);
                    let mwork = match opts.defer_threshold {
                        Some(t) => defer_outliers(w, &layout, mf, &vids, &s, &e, t, queue, qcount),
                        None => mf,
                    };
                    if mwork.any() {
                        vw_neighbor_loop(w, &layout, mwork, &s, &e, |w, act, i| {
                            relax_edges(w, &g, weights, dist, changed, &du, act, i);
                        });
                    }
                }
                base += vpp;
            }
        },
    )
}

/// Block-cooperative relaxation of deferred high-degree vertices. Unlike
/// BFS, the edge body needs the source distance, so this does not reuse
/// [`outlier_kernel`](crate::kernels::common::outlier_kernel) directly.
fn launch_outlier_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    weights: DevPtr<u32>,
    st: &SsspState,
    qc: u32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, dist, changed, queue) = (*g, st.dist, st.changed, st.queue);
    let kernel = move |b: &mut BlockCtx<'_>| {
        let bid = b.block_id();
        let stride = b.num_blocks();
        let bthreads = b.threads_per_block();
        let mut qi = bid;
        while qi < qc {
            b.phase(|w| {
                let v = w.ld_uniform(Mask::FULL, queue, qi);
                let duv = w.ld_uniform(Mask::FULL, dist, v);
                let du = Lanes::splat(duv);
                let s = w.ld_uniform(Mask::FULL, g.row_offsets, v);
                let e = w.ld_uniform(Mask::FULL, g.row_offsets, v + 1);
                let base = w.id().warp_in_block * WARP_SIZE as u32;
                let offs = Lanes::from_fn(|l| base + l as u32);
                let mut i = w.alu1(Mask::FULL, &offs, |o| s.wrapping_add(o));
                let endv = Lanes::splat(e);
                let mut act = w.lt(Mask::FULL, &i, &endv);
                while act.any() {
                    relax_edges(w, &g, weights, dist, changed, &du, act, &i);
                    i = w.add_scalar(act, &i, bthreads);
                    act = w.lt(act, &i, &endv);
                }
            });
            qi += stride;
        }
    };
    let grid = qc.min(exec.resident_grid(&gpu.cfg));
    gpu.launch(grid, exec.block_threads, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwarp::VirtualWarp;
    use maxwarp_graph::reference::sssp_dijkstra;
    use maxwarp_graph::{random_weights, Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn methods() -> Vec<Method> {
        vec![
            Method::Baseline,
            Method::warp(4),
            Method::warp(32),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(8)).with_dynamic()),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(16)).with_defer(64)),
        ]
    }

    fn check_dataset(d: Dataset) {
        let g = d.build(Scale::Tiny);
        let wts = random_weights(&g, 16, 11);
        let src = d.source(&g);
        let want = sssp_dijkstra(&g, &wts, src);
        for method in methods() {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &wts);
            let out = run_sssp(&mut gpu, &dg, src, method, &ExecConfig::default()).unwrap();
            assert_eq!(out.dist, want, "{} / {}", d.name(), method.label());
        }
    }

    #[test]
    fn correct_on_random() {
        check_dataset(Dataset::Random);
    }

    #[test]
    fn correct_on_rmat() {
        check_dataset(Dataset::Rmat);
    }

    #[test]
    fn correct_on_roadnet() {
        check_dataset(Dataset::RoadNet);
    }

    #[test]
    fn correct_on_wikitalk_like() {
        check_dataset(Dataset::WikiTalkLike);
    }

    #[test]
    #[should_panic(expected = "requires a weighted")]
    fn unweighted_graph_rejected() {
        let g = maxwarp_graph::Csr::from_edges(4, &[(0, 1)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let _ = run_sssp(&mut gpu, &dg, 0, Method::Baseline, &ExecConfig::default());
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = maxwarp_graph::Csr::from_edges(64, &[(0, 1), (1, 2)]);
        let w = vec![3u32, 4];
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &w);
        let out = run_sssp(&mut gpu, &dg, 0, Method::warp(8), &ExecConfig::default()).unwrap();
        assert_eq!(out.dist[0], 0);
        assert_eq!(out.dist[1], 3);
        assert_eq!(out.dist[2], 7);
        assert!(out.dist[3..].iter().all(|&d| d == INF));
    }
}
