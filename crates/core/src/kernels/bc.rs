//! Betweenness centrality (level-synchronous GPU Brandes).
//!
//! For each source: a forward sweep computes BFS levels and shortest-path
//! counts `sigma` (discovery and `atomicAdd` accumulation fused into one
//! kernel per level, as in the GPU-Brandes literature), then a backward
//! sweep walks the levels in reverse accumulating dependencies
//! `delta[v] = Σ_{w ∈ succ(v)} sigma[v]/sigma[w] · (1 + delta[w])` —
//! race-free because each round only reads the deeper, already-final
//! level. Both sweeps exist in baseline and virtual warp-centric forms.
//!
//! Full BC is `O(nm)`; like the GPU evaluations this follows, the driver
//! takes an explicit *source sample*.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    load_row_range, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

/// Level value of undiscovered vertices.
pub const INF: u32 = u32::MAX;

/// Result of a betweenness run.
#[derive(Clone, Debug)]
pub struct BcOutput {
    /// Unnormalized centrality accumulated over the source sample.
    pub bc: Vec<f32>,
    /// Execution record (all sources, all sweeps).
    pub run: AlgoRun,
}

struct BcState {
    level: DevPtr<u32>,
    sigma: DevPtr<f32>,
    delta: DevPtr<f32>,
    bc: DevPtr<f32>,
    changed: DevPtr<u32>,
}

/// Run betweenness centrality from the given source sample.
pub fn run_betweenness(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    sources: &[u32],
    method: Method,
    exec: &ExecConfig,
) -> Result<BcOutput, LaunchError> {
    if let Method::WarpCentric(o) = method {
        assert!(
            o.defer_threshold.is_none(),
            "outlier deferral is not wired into the BC kernels"
        );
    }
    assert!(!sources.is_empty(), "need at least one source");
    let st = BcState {
        level: gpu.mem.alloc::<u32>(g.n),
        sigma: gpu.mem.alloc::<f32>(g.n),
        delta: gpu.mem.alloc::<f32>(g.n),
        bc: gpu.mem.alloc::<f32>(g.n),
        changed: gpu.mem.alloc::<u32>(1),
    };
    gpu.mem.fill(st.bc, 0.0f32);
    let mut run = AlgoRun::default();

    for &s in sources {
        assert!(s < g.n, "source {s} out of range for n={}", g.n);
        gpu.mem.fill(st.level, INF);
        gpu.mem.fill(st.sigma, 0.0f32);
        gpu.mem.fill(st.delta, 0.0f32);
        gpu.mem.write(st.level, s, 0);
        gpu.mem.write(st.sigma, s, 1.0f32);

        // ---- forward sweep ----
        let mut depth = 0u32;
        loop {
            run.begin_iteration();
            gpu.mem.write(st.changed, 0, 0u32);
            let stats = launch_forward(gpu, g, &st, depth, method, exec)?;
            run.absorb(&stats);
            if gpu.mem.read(st.changed, 0) == 0 {
                break;
            }
            depth += 1;
            check_iteration_bound(gpu, "bc-forward", depth, g.n)?;
        }

        // ---- backward sweep (deepest level first; level `depth` has no
        //      successors so start at depth-1) ----
        let mut d = depth;
        while d > 0 {
            d -= 1;
            run.begin_iteration();
            let stats = launch_backward(gpu, g, &st, d, method, exec)?;
            run.absorb(&stats);
        }

        // ---- accumulate into bc (skip the source) ----
        run.begin_iteration();
        let stats = launch_accumulate(gpu, g, &st, s, exec)?;
        run.absorb(&stats);
    }

    Ok(BcOutput {
        bc: gpu.mem.download(st.bc),
        run,
    })
}

/// Per-edge forward action: discover at `cur+1` and accumulate sigma.
fn forward_body(
    g: DeviceGraph,
    st_level: DevPtr<u32>,
    st_sigma: DevPtr<f32>,
    changed: DevPtr<u32>,
    cur: u32,
    sv: Lanes<f32>,
) -> impl Fn(&mut WarpCtx<'_>, Mask, &Lanes<u32>) + Copy {
    move |w, act, i| {
        let nbr = w.ld(act, g.col_indices, i);
        let nlv = w.ld(act, st_level, &nbr);
        let m_inf = w.alu_pred(act, &nlv, |x| x == INF);
        if m_inf.any() {
            w.st(m_inf, st_level, &nbr, &Lanes::splat(cur + 1));
            w.st_uniform(m_inf, changed, 0, 1);
        }
        let m_next = w.alu_pred(act, &nlv, |x| x == cur + 1);
        let m_add = m_inf | m_next;
        if m_add.any() {
            let _ = w.atomic_add(m_add, st_sigma, &nbr, &sv);
        }
    }
}

fn launch_forward(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &BcState,
    cur: u32,
    method: Method,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, level, sigma, changed) = (*g, st.level, st.sigma, st.changed);
    let n = g.n;
    match method {
        Method::Baseline => {
            let kernel = move |b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let vid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &vid, n);
                    if m.none() {
                        return;
                    }
                    let lv = w.ld(m, level, &vid);
                    let mf = w.alu_pred(m, &lv, |x| x == cur);
                    if mf.none() {
                        return;
                    }
                    let sv = w.ld(mf, sigma, &vid);
                    let (s, e) = load_row_range(w, &g, mf, &vid);
                    let body = forward_body(g, level, sigma, changed, cur, sv);
                    scalar_neighbor_loop(w, mf, &s, &e, body);
                });
            };
            gpu.launch(
                n.div_ceil(exec.block_threads).max(1),
                exec.block_threads,
                &kernel,
            )
        }
        Method::WarpCentric(opts) => {
            launch_warp_sweep(gpu, g, opts, exec, move |w, layout, vids, m| {
                let lv = w.ld(m, level, vids);
                let mf = w.alu_pred(m, &lv, |x| x == cur);
                if mf.none() {
                    return;
                }
                let sv = w.ld(mf, sigma, vids);
                let (s, e) = load_row_range(w, &g, mf, vids);
                let body = forward_body(g, level, sigma, changed, cur, sv);
                vw_neighbor_loop(w, layout, mf, &s, &e, body);
            })
        }
    }
}

fn launch_backward(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &BcState,
    d: u32,
    method: Method,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (g, level, sigma, delta) = (*g, st.level, st.sigma, st.delta);
    let n = g.n;
    match method {
        Method::Baseline => {
            let kernel = move |b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let vid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &vid, n);
                    if m.none() {
                        return;
                    }
                    let lv = w.ld(m, level, &vid);
                    let mf = w.alu_pred(m, &lv, |x| x == d);
                    if mf.none() {
                        return;
                    }
                    let sv_f = w.ld(mf, sigma, &vid);
                    let (s, e) = load_row_range(w, &g, mf, &vid);
                    let mut acc = Lanes::splat(0.0f32);
                    scalar_neighbor_loop(w, mf, &s, &e, |w, act, i| {
                        backward_edge(w, &g, level, sigma, delta, d, &sv_f, &mut acc, act, i);
                    });
                    w.st(mf, delta, &vid, &acc);
                });
            };
            gpu.launch(
                n.div_ceil(exec.block_threads).max(1),
                exec.block_threads,
                &kernel,
            )
        }
        Method::WarpCentric(opts) => {
            launch_warp_sweep(gpu, g, opts, exec, move |w, layout, vids, m| {
                let lv = w.ld(m, level, vids);
                let mf = w.alu_pred(m, &lv, |x| x == d);
                if mf.none() {
                    return;
                }
                let sv_f = w.ld(mf, sigma, vids);
                let (s, e) = load_row_range(w, &g, mf, vids);
                let mut acc = Lanes::splat(0.0f32);
                vw_neighbor_loop(w, layout, mf, &s, &e, |w, act, i| {
                    backward_edge(w, &g, level, sigma, delta, d, &sv_f, &mut acc, act, i);
                });
                // Sum each virtual warp's partials; the leader writes delta.
                let total = w.seg_reduce_add_f32(mf, &acc, layout.vw.k() as usize);
                let leaders = mf & layout.leaders;
                w.st(leaders, delta, vids, &total);
            })
        }
    }
}

/// Per-edge backward action: accumulate dependency from successors at
/// level `d + 1` into the per-lane accumulator.
#[allow(clippy::too_many_arguments)]
fn backward_edge(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    level: DevPtr<u32>,
    sigma: DevPtr<f32>,
    delta: DevPtr<f32>,
    d: u32,
    sv_f: &Lanes<f32>,
    acc: &mut Lanes<f32>,
    act: Mask,
    i: &Lanes<u32>,
) {
    let nbr = w.ld(act, g.col_indices, i);
    let nlv = w.ld(act, level, &nbr);
    let m_succ = w.alu_pred(act, &nlv, |x| x == d + 1);
    if m_succ.none() {
        return;
    }
    let s_nbr = w.ld(m_succ, sigma, &nbr);
    let d_nbr = w.ld(m_succ, delta, &nbr);
    let ratio = w.alu2(
        m_succ,
        sv_f,
        &s_nbr,
        |s, n| if n > 0.0 { s / n } else { 0.0 },
    );
    let contrib = w.alu2(m_succ, &ratio, &d_nbr, |r, dl| r * (1.0 + dl));
    let acc2 = w.alu2(m_succ, acc, &contrib, |a, c| a + c);
    *acc = acc2.select(m_succ, acc);
}

/// `bc[v] += delta[v]` for reached vertices other than the source.
fn launch_accumulate(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &BcState,
    src: u32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let (level, delta, bc) = (st.level, st.delta, st.bc);
    let n = g.n;
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, n);
            if m.none() {
                return;
            }
            let lv = w.ld(m, level, &vid);
            let reached = w.alu_pred(m, &lv, |x| x != INF);
            let not_src = w.alu_pred(reached, &vid, |v| v != src);
            if not_src.none() {
                return;
            }
            let dl = w.ld(not_src, delta, &vid);
            let cur = w.ld(not_src, bc, &vid);
            let sum = w.alu2(not_src, &cur, &dl, |a, b| a + b);
            w.st(not_src, bc, &vid, &sum);
        });
    };
    gpu.launch(
        n.div_ceil(exec.block_threads).max(1),
        exec.block_threads,
        &kernel,
    )
}

/// Shared warp-task chunking loop for the BC sweeps.
fn launch_warp_sweep(
    gpu: &mut Gpu,
    g: DeviceGraph,
    opts: WarpCentricOpts,
    exec: &ExecConfig,
    body: impl Fn(&mut WarpCtx<'_>, &VwLayout, &Lanes<u32>, Mask) + Copy,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let layout = VwLayout::new(opts.vw);
    let vpp = vertices_per_pass(&layout);
    let n = g.n;
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = n.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);
    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(n);
            let mut base = chunk_base;
            while base < chunk_end {
                let vids = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                if m.none() {
                    break;
                }
                body(w, &layout, &vids, m);
                base += vpp;
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::reference::betweenness;
    use maxwarp_graph::{Csr, Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn check(g: &Csr, sources: &[u32], name: &str, tol: f32) {
        let want = betweenness(g, sources);
        for method in [Method::Baseline, Method::warp(8), Method::warp(32)] {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, g);
            let out =
                run_betweenness(&mut gpu, &dg, sources, method, &ExecConfig::default()).unwrap();
            for (v, &w) in want.iter().enumerate() {
                let got = out.bc[v] as f64;
                let err = (got - w).abs() / w.abs().max(1.0);
                assert!(
                    err < tol as f64,
                    "{name} / {} vertex {v}: {got} vs {w}",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn path_graph_exact() {
        let mut edges = Vec::new();
        for v in 0..4u32 {
            edges.push((v, v + 1));
            edges.push((v + 1, v));
        }
        let g = Csr::from_edges(5, &edges);
        let sources: Vec<u32> = (0..5).collect();
        check(&g, &sources, "path", 1e-5);
    }

    #[test]
    fn star_graph_exact() {
        let mut edges = Vec::new();
        for v in 1..8u32 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        let g = Csr::from_edges(8, &edges);
        let sources: Vec<u32> = (0..8).collect();
        check(&g, &sources, "star", 1e-5);
    }

    #[test]
    fn matches_reference_on_mesh_sample() {
        // A small mesh: path counts (central binomials) stay within f32's
        // exact-integer range. Dataset-scale grids overflow even u64 path
        // counts, which is why sigma is floating point.
        let g = maxwarp_graph::grid2d(12, 12);
        check(&g, &[0, 77], "mesh", 1e-3);
    }

    #[test]
    fn matches_reference_on_social_sample() {
        let g = Dataset::LiveJournalLike.build(Scale::Tiny);
        let src = Dataset::LiveJournalLike.source(&g);
        check(&g, &[src, 3], "lj", 1e-2);
    }

    #[test]
    fn disconnected_source_contributes_nothing() {
        let g = Csr::from_edges(40, &[(0, 1), (1, 0)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out =
            run_betweenness(&mut gpu, &dg, &[5], Method::warp(4), &ExecConfig::default()).unwrap();
        assert!(out.bc.iter().all(|&b| b == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_rejected() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let _ = run_betweenness(&mut gpu, &dg, &[], Method::Baseline, &ExecConfig::default());
    }
}
