//! Parallel graph coloring (Luby-style maximal-independent-set rounds).
//!
//! Each round, an uncolored vertex joins the round's independent set iff
//! its hashed priority beats every uncolored neighbor's (ties broken by
//! id); set members take the round index as their color. Independent-set
//! membership makes each color class conflict-free, so the result is a
//! proper coloring by construction; rounds are O(log n) in expectation.
//!
//! The priority check is a full neighbor-list scan — the same irregular
//! loop as BFS expansion — so it exists in baseline and virtual
//! warp-centric forms. Because priorities are deterministic hashes, both
//! variants compute *identical* colorings, which the tests exploit.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    load_row_range, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

/// Color of uncolored vertices.
pub const UNCOLORED: u32 = u32::MAX;

/// Result of a coloring run.
#[derive(Clone, Debug)]
pub struct ColoringOutput {
    /// Per-vertex colors (0-based round indices).
    pub colors: Vec<u32>,
    /// Number of colors used.
    pub num_colors: u32,
    /// Execution record.
    pub run: AlgoRun,
}

/// Deterministic per-vertex priority (splitmix-style hash).
#[inline]
fn priority(v: u32) -> u32 {
    let mut x = v.wrapping_mul(0x9E37_79B9) ^ 0x85EB_CA6B;
    x ^= x >> 16;
    x = x.wrapping_mul(0x7FEB_352D);
    x ^= x >> 15;
    x
}

/// Beats-relation for the MIS rule: priority, ties by vertex id.
#[inline]
fn beats(v: u32, u: u32) -> bool {
    let (pv, pu) = (priority(v), priority(u));
    pv > pu || (pv == pu && v > u)
}

/// Run Luby-round coloring on a *symmetric* graph.
pub fn run_coloring(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    method: Method,
    exec: &ExecConfig,
) -> Result<ColoringOutput, LaunchError> {
    if let Method::WarpCentric(o) = method {
        assert!(
            o.defer_threshold.is_none(),
            "outlier deferral is not wired into the coloring kernels"
        );
    }
    let colors = gpu.mem.alloc::<u32>(g.n.max(1));
    gpu.mem.fill(colors, UNCOLORED);
    let candidate = gpu.mem.alloc::<u32>(g.n.max(1));
    let remaining = gpu.mem.alloc::<u32>(1);

    let mut run = AlgoRun::default();
    let mut round = 0u32;
    loop {
        run.begin_iteration();
        gpu.mem.write(remaining, 0, 0u32);

        // Phase 1: mark MIS candidates among uncolored vertices.
        let s1 = launch_select(gpu, g, colors, candidate, remaining, method, exec)?;
        run.absorb(&s1);

        // Phase 2: commit candidates to this round's color.
        let s2 = launch_commit(gpu, g, colors, candidate, round, exec)?;
        run.absorb(&s2);

        if gpu.mem.read(remaining, 0) == 0 {
            break;
        }
        round += 1;
        check_iteration_bound(gpu, "coloring", round, g.n)?;
    }

    let host = gpu.mem.download(colors);
    let num_colors = host
        .iter()
        .filter(|&&c| c != UNCOLORED)
        .max()
        .map_or(0, |&c| c + 1);
    Ok(ColoringOutput {
        colors: host,
        num_colors,
        run,
    })
}

/// Per-edge action of the selection phase: a vertex loses candidacy if any
/// *uncolored* neighbor beats it.
fn select_body(
    g: DeviceGraph,
    colors: DevPtr<u32>,
    vids: Lanes<u32>,
) -> impl FnMut(&mut WarpCtx<'_>, Mask, &Lanes<u32>) -> Mask + Copy {
    move |w, act, i| {
        let nbr = w.ld(act, g.col_indices, i);
        let ncol = w.ld(act, colors, &nbr);
        let m_uncolored = w.alu_pred(act, &ncol, |c| c == UNCOLORED);
        // One compare instruction evaluating the beats relation.

        {
            let vv = vids;
            let mut mask = Mask::NONE;
            for l in m_uncolored.iter() {
                if beats(nbr.get(l), vv.get(l)) {
                    mask = mask.with(l, true);
                }
            }
            w.alu_nop(m_uncolored);
            mask
        }
    }
}

fn launch_select(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    colors: DevPtr<u32>,
    candidate: DevPtr<u32>,
    remaining: DevPtr<u32>,
    method: Method,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let n = g.n;
    match method {
        Method::Baseline => {
            let kernel = move |b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let vid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &vid, n);
                    if m.none() {
                        return;
                    }
                    let col = w.ld(m, colors, &vid);
                    let mu = w.alu_pred(m, &col, |c| c == UNCOLORED);
                    if mu.none() {
                        return;
                    }
                    w.st_uniform(mu, remaining, 0, 1);
                    let (s, e) = load_row_range(w, &g, mu, &vid);
                    let mut alive = mu;
                    let mut body = select_body(g, colors, vid);
                    scalar_neighbor_loop(w, mu, &s, &e, |w, act, i| {
                        let loses = body(w, act, i);
                        alive = alive.andnot(loses);
                    });
                    // candidate[v] = 1 for surviving vertices, 0 otherwise.
                    w.st(mu, candidate, &vid, &Lanes::splat(0u32));
                    if alive.any() {
                        w.st(alive, candidate, &vid, &Lanes::splat(1u32));
                    }
                });
            };
            gpu.launch(
                n.div_ceil(exec.block_threads).max(1),
                exec.block_threads,
                &kernel,
            )
        }
        Method::WarpCentric(opts) => {
            let layout = VwLayout::new(opts.vw);
            let vpp = vertices_per_pass(&layout);
            let chunk = exec.chunk_vertices.max(vpp);
            let num_tasks = n.div_ceil(chunk);
            let grid = exec.resident_grid(&gpu.cfg);
            gpu.launch_warp_tasks(
                grid,
                exec.block_threads,
                num_tasks,
                opts.schedule(),
                move |w, task| {
                    let chunk_base = task * chunk;
                    let chunk_end = (chunk_base + chunk).min(n);
                    let mut base = chunk_base;
                    while base < chunk_end {
                        let vids = layout.task_ids(base);
                        let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                        if m.none() {
                            break;
                        }
                        let col = w.ld(m, colors, &vids);
                        let mu = w.alu_pred(m, &col, |c| c == UNCOLORED);
                        if mu.any() {
                            w.st_uniform(mu, remaining, 0, 1);
                            let (s, e) = load_row_range(w, &g, mu, &vids);
                            let mut alive = mu;
                            let mut body = select_body(g, colors, vids);
                            vw_neighbor_loop(w, &layout, mu, &s, &e, |w, act, i| {
                                let loses = body(w, act, i);
                                alive = alive.andnot(loses);
                            });
                            // A vertex survives only if *no lane* of its
                            // virtual warp saw a beating neighbor.
                            let defeated = w.seg_any(mu, mu.andnot(alive), layout.vw.k() as usize);
                            let survivors = mu.andnot(defeated) & layout.leaders;
                            w.st(mu & layout.leaders, candidate, &vids, &Lanes::splat(0u32));
                            if survivors.any() {
                                w.st(survivors, candidate, &vids, &Lanes::splat(1u32));
                            }
                        }
                        base += vpp;
                    }
                },
            )
        }
    }
}

/// Commit phase: candidates take the round's color (a uniform map kernel).
fn launch_commit(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    colors: DevPtr<u32>,
    candidate: DevPtr<u32>,
    round: u32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let n = g.n;
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, n);
            if m.none() {
                return;
            }
            let cand = w.ld(m, candidate, &vid);
            let mc = w.alu_pred(m, &cand, |c| c == 1);
            if mc.none() {
                return;
            }
            // Guard against stale candidate flags from earlier rounds:
            // only still-uncolored vertices take the color.
            let col = w.ld(mc, colors, &vid);
            let mu = w.alu_pred(mc, &col, |c| c == UNCOLORED);
            if mu.any() {
                w.st(mu, colors, &vid, &Lanes::splat(round));
            }
        });
    };
    gpu.launch(
        n.div_ceil(exec.block_threads).max(1),
        exec.block_threads,
        &kernel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::reference::{greedy_coloring, is_proper_coloring};
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn color(g: &maxwarp_graph::Csr, m: Method) -> ColoringOutput {
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, g);
        run_coloring(&mut gpu, &dg, m, &ExecConfig::default()).unwrap()
    }

    #[test]
    fn proper_on_all_symmetric_datasets() {
        for d in [
            Dataset::RoadNet,
            Dataset::SmallWorld,
            Dataset::LiveJournalLike,
        ] {
            let g = d.build(Scale::Tiny);
            for m in [Method::Baseline, Method::warp(8), Method::warp(32)] {
                let out = color(&g, m);
                assert!(
                    is_proper_coloring(&g, &out.colors),
                    "{} / {}",
                    d.name(),
                    m.label()
                );
                assert!(out.num_colors >= 1);
            }
        }
    }

    #[test]
    fn baseline_and_warp_produce_identical_colorings() {
        // Priorities are deterministic, so every method computes the same
        // MIS sequence.
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        let a = color(&g, Method::Baseline);
        let b = color(&g, Method::warp(8));
        let c = color(&g, Method::warp(32));
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.colors, c.colors);
    }

    #[test]
    fn color_count_reasonable_vs_greedy() {
        let g = Dataset::RoadNet.build(Scale::Tiny);
        let greedy = greedy_coloring(&g);
        let luby = color(&g, Method::warp(8));
        let greedy_colors = greedy.iter().max().unwrap() + 1;
        // Luby uses more colors than greedy but not absurdly many.
        assert!(
            luby.num_colors <= greedy_colors * 8 + 8,
            "luby {} vs greedy {greedy_colors}",
            luby.num_colors
        );
    }

    #[test]
    fn empty_graph_all_one_round() {
        let g = maxwarp_graph::Csr::empty(64);
        let out = color(&g, Method::Baseline);
        assert!(out.colors.iter().all(|&c| c == 0), "no conflicts: one MIS");
        assert_eq!(out.num_colors, 1);
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let n = 8u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = maxwarp_graph::Csr::from_edges(n, &edges);
        let out = color(&g, Method::warp(4));
        assert!(is_proper_coloring(&g, &out.colors));
        assert_eq!(out.num_colors, n, "K_n needs n colors");
    }
}
