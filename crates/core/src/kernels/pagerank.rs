//! PageRank (push-style, fixed iteration count).
//!
//! Each iteration: every vertex pushes `rank/degree` to its neighbors with
//! `atomicAdd` (dangling vertices add their rank to a global accumulator);
//! a second map kernel then applies damping and teleport. The neighbor
//! push is the irregular part, and it takes the same baseline vs.
//! virtual-warp-centric shapes as BFS.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    load_row_range, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::AlgoRun;
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

/// Result of a PageRank run.
#[derive(Clone, Debug)]
pub struct PagerankOutput {
    /// Final per-vertex ranks (sum ≈ 1).
    pub ranks: Vec<f32>,
    /// Execution record.
    pub run: AlgoRun,
}

/// Push each active vertex's `share` across the edges at indices `i`.
fn push_rank(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    next: DevPtr<f32>,
    share: &Lanes<f32>,
    act: Mask,
    i: &Lanes<u32>,
) {
    let nbr = w.ld(act, g.col_indices, i);
    let _ = w.atomic_add(act, next, &nbr, share);
}

/// Run `iters` PageRank iterations with damping `d`.
pub fn run_pagerank(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    iters: u32,
    d: f32,
    method: Method,
    exec: &ExecConfig,
) -> Result<PagerankOutput, LaunchError> {
    assert!(g.n > 0, "pagerank needs a non-empty graph");
    assert!((0.0..=1.0).contains(&d), "damping must be in [0,1]");
    let n = g.n;
    let mut rank = gpu.mem.alloc::<f32>(n);
    let mut next = gpu.mem.alloc::<f32>(n);
    let dangling = gpu.mem.alloc::<f32>(1);
    gpu.mem.fill(rank, 1.0f32 / n as f32);

    let mut run = AlgoRun::default();
    for it in 0..iters {
        run.begin_iteration();
        gpu.mem.fill(next, 0.0f32);
        gpu.mem.write(dangling, 0, 0.0f32);

        if gpu.profiling() {
            gpu.set_profile_label(&format!("pagerank iter {it}"));
        }
        let stats = match method {
            Method::Baseline => launch_baseline_push(gpu, g, rank, next, dangling, exec)?,
            Method::WarpCentric(opts) => {
                launch_warp_push(gpu, g, rank, next, dangling, opts, exec)?
            }
        };
        run.absorb(&stats);

        // Apply damping + teleport + dangling redistribution (a uniform map
        // kernel, identical for every method).
        let dang = gpu.mem.read(dangling, 0);
        let base = (1.0 - d) / n as f32 + d * dang / n as f32;
        let s = launch_apply(gpu, n, next, base, d, exec)?;
        run.absorb(&s);

        std::mem::swap(&mut rank, &mut next);
    }
    Ok(PagerankOutput {
        ranks: gpu.mem.download(rank),
        run,
    })
}

/// Compute per-lane shares and flag dangling vertices; shared by both push
/// variants. Returns `(share, m_dangling, m_push)`.
fn shares(
    w: &mut WarpCtx<'_>,
    rank: DevPtr<f32>,
    vids: &Lanes<u32>,
    m: Mask,
    s: &Lanes<u32>,
    e: &Lanes<u32>,
) -> (Lanes<f32>, Mask, Mask) {
    let deg = w.alu2(m, e, s, |e, s| e.wrapping_sub(s));
    let r = w.ld(m, rank, vids);
    let m_dangling = w.alu_pred(m, &deg, |d| d == 0);
    let m_push = m.andnot(m_dangling);
    let share = w.alu2(
        m_push,
        &r,
        &deg,
        |r, d| if d > 0 { r / d as f32 } else { 0.0 },
    );
    (share, m_dangling, m_push)
}

fn launch_baseline_push(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    rank: DevPtr<f32>,
    next: DevPtr<f32>,
    dangling: DevPtr<f32>,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let n = g.n;
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, n);
            if m.none() {
                return;
            }
            let (s, e) = load_row_range(w, &g, m, &vid);
            let (share, m_dangling, m_push) = shares(w, rank, &vid, m, &s, &e);
            if m_dangling.any() {
                let r = w.ld(m_dangling, rank, &vid);
                let _ = w.atomic_add(m_dangling, dangling, &Lanes::splat(0), &r);
            }
            if m_push.any() {
                scalar_neighbor_loop(w, m_push, &s, &e, |w, act, i| {
                    push_rank(w, &g, next, &share, act, i);
                });
            }
        });
    };
    let grid = n.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

fn launch_warp_push(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    rank: DevPtr<f32>,
    next: DevPtr<f32>,
    dangling: DevPtr<f32>,
    opts: WarpCentricOpts,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let layout = VwLayout::new(opts.vw);
    let vpp = vertices_per_pass(&layout);
    let n = g.n;
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = n.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);

    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(n);
            let mut base = chunk_base;
            while base < chunk_end {
                let vids = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                if m.none() {
                    break;
                }
                let (s, e) = load_row_range(w, &g, m, &vids);
                let (share, m_dangling, m_push) = shares(w, rank, &vids, m, &s, &e);
                // Only virtual-warp leaders contribute the dangling rank
                // (every lane of a vw holds the same vertex).
                let m_dl = m_dangling & layout.leaders;
                if m_dl.any() {
                    let r = w.ld(m_dl, rank, &vids);
                    let _ = w.atomic_add(m_dl, dangling, &Lanes::splat(0), &r);
                }
                if m_push.any() {
                    vw_neighbor_loop(w, &layout, m_push, &s, &e, |w, act, i| {
                        push_rank(w, &g, next, &share, act, i);
                    });
                }
                base += vpp;
            }
        },
    )
}

/// `next[v] = base + d * next[v]` — the uniform apply kernel.
fn launch_apply(
    gpu: &mut Gpu,
    n: u32,
    next: DevPtr<f32>,
    base: f32,
    d: f32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, n);
            if m.none() {
                return;
            }
            let v = w.ld(m, next, &vid);
            let r = w.alu1(m, &v, |x| base + d * x);
            w.st(m, next, &vid, &r);
        });
    };
    let grid = n.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwarp::VirtualWarp;
    use maxwarp_cpu::pagerank::{pagerank_push, rank_linf};
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn methods() -> Vec<Method> {
        vec![
            Method::Baseline,
            Method::warp(4),
            Method::warp(32),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(8)).with_dynamic()),
        ]
    }

    fn check_dataset(d: Dataset, tol: f32) {
        let g = d.build(Scale::Tiny);
        let want = pagerank_push(&g, 10, 0.85);
        for method in methods() {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out =
                run_pagerank(&mut gpu, &dg, 10, 0.85, method, &ExecConfig::default()).unwrap();
            let err = rank_linf(&out.ranks, &want);
            assert!(err < tol, "{} / {}: linf={err}", d.name(), method.label());
            assert_eq!(out.run.iterations, 10);
        }
    }

    #[test]
    fn matches_cpu_on_random() {
        check_dataset(Dataset::Random, 1e-5);
    }

    #[test]
    fn matches_cpu_on_rmat() {
        check_dataset(Dataset::Rmat, 1e-5);
    }

    #[test]
    fn matches_cpu_on_patents_like() {
        // Patents-like has dangling vertices (vertex 0 cites nothing).
        check_dataset(Dataset::PatentsLike, 1e-5);
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_pagerank(
            &mut gpu,
            &dg,
            8,
            0.85,
            Method::warp(8),
            &ExecConfig::default(),
        )
        .unwrap();
        let sum: f32 = out.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum={sum}");
    }

    #[test]
    fn hub_gets_highest_rank() {
        // All vertices point at vertex 0.
        let edges: Vec<(u32, u32)> = (1..40u32).map(|v| (v, 0)).collect();
        let g = maxwarp_graph::Csr::from_edges(40, &edges);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_pagerank(
            &mut gpu,
            &dg,
            20,
            0.85,
            Method::Baseline,
            &ExecConfig::default(),
        )
        .unwrap();
        for v in 1..40 {
            assert!(out.ranks[0] > out.ranks[v as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_graph_rejected() {
        let g = maxwarp_graph::Csr::empty(0);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let _ = run_pagerank(
            &mut gpu,
            &dg,
            5,
            0.85,
            Method::Baseline,
            &ExecConfig::default(),
        );
    }
}
