//! PageRank (push-style, fixed iteration count).
//!
//! Each iteration: every vertex pushes `rank/degree` to its neighbors with
//! `atomicAdd` (dangling vertices add their rank to a global accumulator);
//! a second map kernel then applies damping and teleport. The neighbor
//! push is the irregular part, and it takes the same baseline vs.
//! virtual-warp-centric shapes as BFS.
//!
//! Ranks are **Q2.30 fixed-point `u32`**, not `f32`: integer `atomicAdd`
//! is associative and commutative, so the accumulated `next` array is
//! bit-identical no matter how the pushes are ordered — across warp
//! schedules, and across a multi-device edge-cut where each shard
//! accumulates a partial sum that is merged host-side. (With `f32`
//! accumulation the sharded merge would differ from the single-device
//! result in the last ulp.) One fixed-point unit is `2^-30 ≈ 9.3e-10` of
//! rank mass; divisions round to nearest, so the result tracks exact
//! rational PageRank far closer than the `f32` tolerance of the tests.

use crate::device_graph::DeviceGraph;
use crate::kernels::common::{
    load_row_range, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::AlgoRun;
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

/// Fixed-point scale: rank 1.0 == `PR_SCALE` units (Q2.30).
pub const PR_SCALE: u32 = 1 << 30;

/// Damping factor as a Q2.30 fixed-point multiplier.
pub fn pagerank_damping_fp(d: f32) -> u64 {
    assert!((0.0..=1.0).contains(&d), "damping must be in [0,1]");
    (d as f64 * PR_SCALE as f64).round() as u64
}

/// `(d_fp * x) >> 30`, rounded to nearest — the damping multiply.
#[inline]
fn mul_fp(d_fp: u64, x: u32) -> u32 {
    ((d_fp * x as u64 + (1 << 29)) >> 30) as u32
}

/// The per-iteration teleport+dangling base term, in fixed point:
/// `((1 - d) + d * dangling) / n`, rounded to nearest. Shared by the
/// single-device driver and the sharded executor so both apply the exact
/// same integer — the redistribution must be computed over the *global*
/// vertex count and dangling mass.
pub fn pagerank_base_fp(n: u32, d_fp: u64, dangling: u32) -> u32 {
    let teleport = PR_SCALE as u64 - d_fp;
    let redistributed = mul_fp(d_fp, dangling) as u64;
    (((teleport + redistributed) + n as u64 / 2) / n as u64) as u32
}

/// Convert a fixed-point rank back to `f32` for output.
pub fn pagerank_fp_to_f32(x: u32) -> f32 {
    (x as f64 / PR_SCALE as f64) as f32
}

/// Result of a PageRank run.
#[derive(Clone, Debug)]
pub struct PagerankOutput {
    /// Final per-vertex ranks (sum ≈ 1).
    pub ranks: Vec<f32>,
    /// Execution record.
    pub run: AlgoRun,
}

/// Device-side working state of a PageRank run. Public so external
/// drivers (the sharded BSP executor) can seed ranks and step iterations
/// themselves.
pub struct PagerankState {
    /// Current ranks, fixed point.
    pub rank: DevPtr<u32>,
    /// Next-iteration accumulator, fixed point.
    pub next: DevPtr<u32>,
    /// Global dangling-mass accumulator (one fixed-point cell).
    pub dangling: DevPtr<u32>,
}

impl PagerankState {
    /// Allocate state over `len` vertex slots, every rank initialized to
    /// `init` fixed-point units. The single-device driver passes
    /// `PR_SCALE / n`; a shard passes the same global value for its local
    /// slots (owned and ghost alike).
    pub fn new(gpu: &mut Gpu, len: u32, init: u32) -> PagerankState {
        let rank = gpu.mem.alloc::<u32>(len.max(1));
        let next = gpu.mem.alloc::<u32>(len.max(1));
        let dangling = gpu.mem.alloc::<u32>(1);
        gpu.mem.fill(rank, init);
        PagerankState {
            rank,
            next,
            dangling,
        }
    }

    /// Swap the rank and next buffers (end of one iteration).
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.rank, &mut self.next);
    }
}

/// One push pass: zero `next` and the dangling cell, then push every
/// vertex in `0..rows` across its out-edges (`rows < len` lets a shard
/// skip its edge-less ghost slots, which must neither push nor count as
/// dangling). Stats are absorbed into `run` under a fresh iteration.
#[allow(clippy::too_many_arguments)]
pub fn pagerank_push_round(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &PagerankState,
    rows: u32,
    iter: u32,
    method: Method,
    exec: &ExecConfig,
    run: &mut AlgoRun,
) -> Result<(), LaunchError> {
    run.begin_iteration();
    gpu.mem.fill(st.next, 0u32);
    gpu.mem.write(st.dangling, 0, 0u32);

    if gpu.profiling() {
        gpu.set_profile_label(&format!("pagerank iter {iter}"));
    }
    let stats = match method {
        Method::Baseline => {
            launch_baseline_push(gpu, g, st.rank, st.next, st.dangling, rows, exec)?
        }
        Method::WarpCentric(opts) => {
            launch_warp_push(gpu, g, st.rank, st.next, st.dangling, rows, opts, exec)?
        }
    };
    run.absorb(&stats);
    Ok(())
}

/// The damping/teleport map over `0..rows`: `next[v] = base_fp + d*next[v]`.
/// Stats absorb into the current iteration; the caller swaps buffers after.
pub fn pagerank_apply_round(
    gpu: &mut Gpu,
    st: &PagerankState,
    rows: u32,
    base_fp: u32,
    d_fp: u64,
    exec: &ExecConfig,
    run: &mut AlgoRun,
) -> Result<(), LaunchError> {
    let s = launch_apply(gpu, rows, st.next, base_fp, d_fp, exec)?;
    run.absorb(&s);
    Ok(())
}

/// Push each active vertex's `share` across the edges at indices `i`.
fn push_rank(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    next: DevPtr<u32>,
    share: &Lanes<u32>,
    act: Mask,
    i: &Lanes<u32>,
) {
    let nbr = w.ld(act, g.col_indices, i);
    let _ = w.atomic_add(act, next, &nbr, share);
}

/// Run `iters` PageRank iterations with damping `d`.
pub fn run_pagerank(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    iters: u32,
    d: f32,
    method: Method,
    exec: &ExecConfig,
) -> Result<PagerankOutput, LaunchError> {
    assert!(g.n > 0, "pagerank needs a non-empty graph");
    let n = g.n;
    let d_fp = pagerank_damping_fp(d);
    let mut st = PagerankState::new(gpu, n, PR_SCALE / n);

    let mut run = AlgoRun::default();
    for it in 0..iters {
        pagerank_push_round(gpu, g, &st, n, it, method, exec, &mut run)?;

        // Apply damping + teleport + dangling redistribution (a uniform map
        // kernel, identical for every method).
        let dang = gpu.mem.read(st.dangling, 0);
        let base_fp = pagerank_base_fp(n, d_fp, dang);
        pagerank_apply_round(gpu, &st, n, base_fp, d_fp, exec, &mut run)?;
        st.swap();
    }
    let ranks = gpu
        .mem
        .download(st.rank)
        .into_iter()
        .map(pagerank_fp_to_f32)
        .collect();
    Ok(PagerankOutput { ranks, run })
}

/// Compute per-lane shares and flag dangling vertices; shared by both push
/// variants. Returns `(share, m_dangling, m_push)`. The share is the
/// round-to-nearest fixed-point quotient `rank / degree`.
fn shares(
    w: &mut WarpCtx<'_>,
    rank: DevPtr<u32>,
    vids: &Lanes<u32>,
    m: Mask,
    s: &Lanes<u32>,
    e: &Lanes<u32>,
) -> (Lanes<u32>, Mask, Mask) {
    let deg = w.alu2(m, e, s, |e, s| e.wrapping_sub(s));
    let r = w.ld(m, rank, vids);
    let m_dangling = w.alu_pred(m, &deg, |d| d == 0);
    let m_push = m.andnot(m_dangling);
    let share = w.alu2(m_push, &r, &deg, |r, d| {
        if d > 0 {
            ((r as u64 + d as u64 / 2) / d as u64) as u32
        } else {
            0
        }
    });
    (share, m_dangling, m_push)
}

#[allow(clippy::too_many_arguments)]
fn launch_baseline_push(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    rank: DevPtr<u32>,
    next: DevPtr<u32>,
    dangling: DevPtr<u32>,
    rows: u32,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, rows);
            if m.none() {
                return;
            }
            let (s, e) = load_row_range(w, &g, m, &vid);
            let (share, m_dangling, m_push) = shares(w, rank, &vid, m, &s, &e);
            if m_dangling.any() {
                let r = w.ld(m_dangling, rank, &vid);
                let _ = w.atomic_add(m_dangling, dangling, &Lanes::splat(0), &r);
            }
            if m_push.any() {
                scalar_neighbor_loop(w, m_push, &s, &e, |w, act, i| {
                    push_rank(w, &g, next, &share, act, i);
                });
            }
        });
    };
    let grid = rows.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

#[allow(clippy::too_many_arguments)]
fn launch_warp_push(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    rank: DevPtr<u32>,
    next: DevPtr<u32>,
    dangling: DevPtr<u32>,
    rows: u32,
    opts: WarpCentricOpts,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let layout = VwLayout::new(opts.vw);
    let vpp = vertices_per_pass(&layout);
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = rows.div_ceil(chunk).max(1);
    let grid = exec.resident_grid(&gpu.cfg);

    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(rows);
            let mut base = chunk_base;
            while base < chunk_end {
                let vids = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                if m.none() {
                    break;
                }
                let (s, e) = load_row_range(w, &g, m, &vids);
                let (share, m_dangling, m_push) = shares(w, rank, &vids, m, &s, &e);
                // Only virtual-warp leaders contribute the dangling rank
                // (every lane of a vw holds the same vertex).
                let m_dl = m_dangling & layout.leaders;
                if m_dl.any() {
                    let r = w.ld(m_dl, rank, &vids);
                    let _ = w.atomic_add(m_dl, dangling, &Lanes::splat(0), &r);
                }
                if m_push.any() {
                    vw_neighbor_loop(w, &layout, m_push, &s, &e, |w, act, i| {
                        push_rank(w, &g, next, &share, act, i);
                    });
                }
                base += vpp;
            }
        },
    )
}

/// `next[v] = base_fp + d * next[v]` — the uniform apply kernel.
fn launch_apply(
    gpu: &mut Gpu,
    rows: u32,
    next: DevPtr<u32>,
    base_fp: u32,
    d_fp: u64,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let kernel = move |b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let vid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &vid, rows);
            if m.none() {
                return;
            }
            let v = w.ld(m, next, &vid);
            let r = w.alu1(m, &v, |x| base_fp + mul_fp(d_fp, x));
            w.st(m, next, &vid, &r);
        });
    };
    let grid = rows.div_ceil(exec.block_threads).max(1);
    gpu.launch(grid, exec.block_threads, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwarp::VirtualWarp;
    use maxwarp_cpu::pagerank::{pagerank_push, rank_linf};
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn methods() -> Vec<Method> {
        vec![
            Method::Baseline,
            Method::warp(4),
            Method::warp(32),
            Method::WarpCentric(WarpCentricOpts::plain(VirtualWarp::new(8)).with_dynamic()),
        ]
    }

    fn check_dataset(d: Dataset, tol: f32) {
        let g = d.build(Scale::Tiny);
        let want = pagerank_push(&g, 10, 0.85);
        for method in methods() {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out =
                run_pagerank(&mut gpu, &dg, 10, 0.85, method, &ExecConfig::default()).unwrap();
            let err = rank_linf(&out.ranks, &want);
            assert!(err < tol, "{} / {}: linf={err}", d.name(), method.label());
            assert_eq!(out.run.iterations, 10);
        }
    }

    #[test]
    fn matches_cpu_on_random() {
        check_dataset(Dataset::Random, 1e-5);
    }

    #[test]
    fn matches_cpu_on_rmat() {
        check_dataset(Dataset::Rmat, 1e-5);
    }

    #[test]
    fn matches_cpu_on_patents_like() {
        // Patents-like has dangling vertices (vertex 0 cites nothing).
        check_dataset(Dataset::PatentsLike, 1e-5);
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_pagerank(
            &mut gpu,
            &dg,
            8,
            0.85,
            Method::warp(8),
            &ExecConfig::default(),
        )
        .unwrap();
        let sum: f32 = out.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum={sum}");
    }

    #[test]
    fn hub_gets_highest_rank() {
        // All vertices point at vertex 0.
        let edges: Vec<(u32, u32)> = (1..40u32).map(|v| (v, 0)).collect();
        let g = maxwarp_graph::Csr::from_edges(40, &edges);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_pagerank(
            &mut gpu,
            &dg,
            20,
            0.85,
            Method::Baseline,
            &ExecConfig::default(),
        )
        .unwrap();
        for v in 1..40 {
            assert!(out.ranks[0] > out.ranks[v as usize]);
        }
    }

    #[test]
    fn methods_agree_bitwise() {
        // Fixed-point accumulation is order-independent: every method must
        // produce byte-identical ranks, not merely close ones.
        let g = Dataset::Rmat.build(Scale::Tiny);
        let runs: Vec<Vec<f32>> = methods()
            .into_iter()
            .map(|m| {
                let mut gpu = Gpu::new(GpuConfig::tiny_test());
                let dg = DeviceGraph::upload(&mut gpu, &g);
                run_pagerank(&mut gpu, &dg, 10, 0.85, m, &ExecConfig::default())
                    .unwrap()
                    .ranks
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(&runs[0], r, "fixed-point ranks must not depend on method");
        }
    }

    #[test]
    fn fixed_point_helpers_round_to_nearest() {
        assert_eq!(pagerank_damping_fp(1.0), PR_SCALE as u64);
        assert_eq!(pagerank_damping_fp(0.0), 0);
        // base with no damping is exactly the rounded teleport share.
        assert_eq!(pagerank_base_fp(4, 0, 0), PR_SCALE / 4);
        // Full damping and full dangling mass: everything redistributes.
        assert_eq!(pagerank_base_fp(2, PR_SCALE as u64, PR_SCALE), PR_SCALE / 2);
        assert_eq!(pagerank_fp_to_f32(PR_SCALE), 1.0);
        assert_eq!(pagerank_fp_to_f32(PR_SCALE / 2), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_graph_rejected() {
        let g = maxwarp_graph::Csr::empty(0);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let _ = run_pagerank(
            &mut gpu,
            &dg,
            5,
            0.85,
            Method::Baseline,
            &ExecConfig::default(),
        );
    }
}
