//! Direction-optimizing BFS on the device (Beamer's top-down/bottom-up
//! switch, the optimization Enterprise and later GPU BFS systems built on
//! the paper's warp-centric substrate).
//!
//! *Top-down* levels expand the frontier as usual. *Bottom-up* levels
//! invert the work: every unvisited vertex scans its **in**-neighbors for
//! a parent on the current level and claims itself — with an early exit
//! the moment a parent is found. When the frontier covers a large slice
//! of the graph (the 1–2 middle levels of small-world graphs), bottom-up
//! touches far fewer edges. Both directions come in baseline and virtual
//! warp-centric mappings.
//!
//! The host driver switches direction per level from device-counted
//! frontier sizes using the classic α/β heuristic.

use crate::device_graph::DeviceGraph;
use crate::kernels::bfs::{BfsOutput, INF};
use crate::kernels::common::{
    ld_cols_opt, load_row_range_opt, scalar_neighbor_loop, vertices_per_pass, vw_neighbor_loop,
};
use crate::method::{ExecConfig, Method, WarpCentricOpts};
use crate::runner::{check_iteration_bound, AlgoRun};
use crate::vwarp::VwLayout;
use maxwarp_simt::{BlockCtx, DevPtr, Gpu, Lanes, LaunchError, Mask, WarpCtx};

/// Which way a level was executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    TopDown,
    BottomUp,
}

/// Switch thresholds (same semantics as the CPU hybrid in `maxwarp-cpu`).
#[derive(Clone, Copy, Debug)]
pub struct GpuHybridConfig {
    /// Go bottom-up when `frontier_edges > remaining_edges / alpha`.
    pub alpha: u32,
    /// Return top-down when `frontier_size < n / beta`.
    pub beta: u32,
}

impl Default for GpuHybridConfig {
    fn default() -> Self {
        GpuHybridConfig {
            alpha: 14,
            beta: 24,
        }
    }
}

/// Result of a hybrid run: the BFS output plus the per-level directions.
#[derive(Clone, Debug)]
pub struct HybridBfsOutput {
    /// Levels and execution record.
    pub bfs: BfsOutput,
    /// Direction chosen for each level.
    pub directions: Vec<Direction>,
}

struct HState {
    levels: DevPtr<u32>,
    /// Discoveries this level (device counter).
    nf: DevPtr<u32>,
}

/// Run direction-optimizing BFS. `rev` must be the transpose of `g` (pass
/// the same `DeviceGraph` for symmetric graphs).
pub fn run_bfs_hybrid(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    rev: &DeviceGraph,
    src: u32,
    method: Method,
    exec: &ExecConfig,
    hybrid: &GpuHybridConfig,
) -> Result<HybridBfsOutput, LaunchError> {
    assert_eq!(g.n, rev.n, "reverse graph must match");
    if let Method::WarpCentric(o) = method {
        assert!(
            o.defer_threshold.is_none(),
            "outlier deferral is not wired into hybrid BFS"
        );
    }
    assert!(src < g.n, "source {src} out of range for n={}", g.n);
    let n = g.n;
    let levels = gpu.mem.alloc::<u32>(n);
    gpu.mem.fill(levels, INF);
    gpu.mem.write(levels, src, 0);
    let st = HState {
        levels,
        nf: gpu.mem.alloc::<u32>(1),
    };

    let avg_deg = (g.m as f64 / n.max(1) as f64).max(1.0);
    let mut run = AlgoRun::default();
    let mut directions = Vec::new();
    let mut cur = 0u32;
    let mut frontier_size = 1u64;
    let mut seen = 1u64;
    loop {
        run.begin_iteration();
        gpu.mem.write(st.nf, 0, 0u32);

        // α/β decision from host-visible counters.
        let frontier_edges = frontier_size as f64 * avg_deg;
        let remaining_edges = (n as u64).saturating_sub(seen) as f64 * avg_deg;
        let bottom_up = frontier_edges > remaining_edges / hybrid.alpha as f64
            && frontier_size > (n as u64) / hybrid.beta as u64;

        if gpu.profiling() {
            let dir = if bottom_up { "bottom-up" } else { "top-down" };
            gpu.set_profile_label(&format!("bfs_hybrid level {cur} {dir}"));
        }
        let stats = if bottom_up {
            directions.push(Direction::BottomUp);
            launch_bottom_up(gpu, rev, &st, cur, method, exec)?
        } else {
            directions.push(Direction::TopDown);
            launch_top_down(gpu, g, &st, cur, method, exec)?
        };
        run.absorb(&stats);

        let nf = gpu.mem.read(st.nf, 0) as u64;
        if nf == 0 {
            break;
        }
        // Top-down counts can over-count duplicate same-level claims;
        // clamp so the remaining-edges estimate never underflows.
        seen = (seen + nf).min(n as u64);
        frontier_size = nf;
        cur += 1;
        check_iteration_bound(gpu, "bfs-hybrid", cur, n)?;
    }

    Ok(HybridBfsOutput {
        bfs: BfsOutput {
            levels: gpu.mem.download(st.levels),
            run,
        },
        directions,
    })
}

/// Top-down level (the scan formulation plus a discovery counter).
fn launch_top_down(
    gpu: &mut Gpu,
    g: &DeviceGraph,
    st: &HState,
    cur: u32,
    method: Method,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let g = *g;
    let n = g.n;
    let (levels, nf) = (st.levels, st.nf);
    let cached = exec.cached_graph_loads;
    let body = move |w: &mut WarpCtx<'_>, act: Mask, i: &Lanes<u32>| {
        let nbr = ld_cols_opt(w, &g, act, i, cached);
        let nlv = w.ld(act, levels, &nbr);
        let upd = w.alu_pred(act, &nlv, |x| x == INF);
        if upd.any() {
            w.st(upd, levels, &nbr, &Lanes::splat(cur + 1));
            // Count discoveries (duplicate claims within one level
            // over-count slightly; the heuristic only needs magnitude, and
            // the warp aggregates to one atomic).
            let _ = w.atomic_add_uniform(upd, nf, 0, upd.count());
        }
    };
    match method {
        Method::Baseline => {
            let kernel = move |b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let vid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &vid, n);
                    if m.none() {
                        return;
                    }
                    let lv = w.ld(m, levels, &vid);
                    let mf = w.alu_pred(m, &lv, |x| x == cur);
                    if mf.none() {
                        return;
                    }
                    let (s, e) = load_row_range_opt(w, &g, mf, &vid, cached);
                    scalar_neighbor_loop(w, mf, &s, &e, body);
                });
            };
            gpu.launch(
                n.div_ceil(exec.block_threads).max(1),
                exec.block_threads,
                &kernel,
            )
        }
        Method::WarpCentric(opts) => warp_sweep(gpu, exec, opts, n, move |w, layout, vids, m| {
            let lv = w.ld(m, levels, vids);
            let mf = w.alu_pred(m, &lv, |x| x == cur);
            if mf.none() {
                return;
            }
            let (s, e) = load_row_range_opt(w, &g, mf, vids, cached);
            vw_neighbor_loop(w, layout, mf, &s, &e, body);
        }),
    }
}

/// Bottom-up level: unvisited vertices scan in-neighbors for a parent at
/// `cur`, claiming themselves with an early exit.
fn launch_bottom_up(
    gpu: &mut Gpu,
    rev: &DeviceGraph,
    st: &HState,
    cur: u32,
    method: Method,
    exec: &ExecConfig,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let rev = *rev;
    let n = rev.n;
    let (levels, nf) = (st.levels, st.nf);
    let cached = exec.cached_graph_loads;
    match method {
        Method::Baseline => {
            let kernel = move |b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let vid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &vid, n);
                    if m.none() {
                        return;
                    }
                    let lv = w.ld(m, levels, &vid);
                    let mu = w.alu_pred(m, &lv, |x| x == INF);
                    if mu.none() {
                        return;
                    }
                    let (s, e) = load_row_range_opt(w, &rev, mu, &vid, cached);
                    // Scalar scan with early exit per lane.
                    let mut found = Mask::NONE;
                    let mut i = s;
                    let mut act = w.lt(mu, &i, &e);
                    while act.any() {
                        let parent = ld_cols_opt(w, &rev, act, &i, cached);
                        let plv = w.ld(act, levels, &parent);
                        let hit = w.alu_pred(act, &plv, |x| x == cur);
                        found |= hit;
                        act = act.andnot(hit); // early exit for satisfied lanes
                        i = w.add_scalar(act, &i, 1);
                        act = act & w.lt(act, &i, &e);
                    }
                    if found.any() {
                        w.st(found, levels, &vid, &Lanes::splat(cur + 1));
                        let _ = w.atomic_add_uniform(found, nf, 0, found.count());
                    }
                });
            };
            gpu.launch(
                n.div_ceil(exec.block_threads).max(1),
                exec.block_threads,
                &kernel,
            )
        }
        Method::WarpCentric(opts) => warp_sweep(gpu, exec, opts, n, move |w, layout, vids, m| {
            let lv = w.ld(m, levels, vids);
            let mu = w.alu_pred(m, &lv, |x| x == INF);
            if mu.none() {
                return;
            }
            let (s, e) = load_row_range_opt(w, &rev, mu, vids, cached);
            let k = layout.vw.k();
            // Strided scan; a virtual warp exits as soon as any lane hits.
            let mut found_vw = Mask::NONE;
            let mut i = w.add(mu, &s, &layout.lane_in_vw);
            let mut act = w.lt(mu, &i, &e);
            while act.any() {
                let parent = ld_cols_opt(w, &rev, act, &i, cached);
                let plv = w.ld(act, levels, &parent);
                let hit = w.alu_pred(act, &plv, |x| x == cur);
                let hit_vw = w.seg_any(act, hit, k as usize);
                found_vw |= hit_vw;
                act = act.andnot(hit_vw); // whole virtual warp exits
                i = w.add_scalar(act, &i, k);
                act = act & w.lt(act, &i, &e);
            }
            let claim = found_vw & mu & layout.leaders;
            if claim.any() {
                w.st(claim, levels, vids, &Lanes::splat(cur + 1));
                let _ = w.atomic_add_uniform(claim, nf, 0, claim.count());
            }
        }),
    }
}

/// Shared warp-task chunking loop.
fn warp_sweep(
    gpu: &mut Gpu,
    exec: &ExecConfig,
    opts: WarpCentricOpts,
    n: u32,
    body: impl Fn(&mut WarpCtx<'_>, &VwLayout, &Lanes<u32>, Mask) + Copy,
) -> Result<maxwarp_simt::KernelStats, LaunchError> {
    let layout = VwLayout::new(opts.vw);
    let vpp = vertices_per_pass(&layout);
    let chunk = exec.chunk_vertices.max(vpp);
    let num_tasks = n.div_ceil(chunk);
    let grid = exec.resident_grid(&gpu.cfg);
    gpu.launch_warp_tasks(
        grid,
        exec.block_threads,
        num_tasks,
        opts.schedule(),
        move |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(n);
            let mut base = chunk_base;
            while base < chunk_end {
                let vids = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                if m.none() {
                    break;
                }
                body(w, &layout, &vids, m);
                base += vpp;
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::reference::bfs_levels;
    use maxwarp_graph::{Dataset, Scale};
    use maxwarp_simt::{Gpu, GpuConfig};

    fn run_on(
        g: &maxwarp_graph::Csr,
        src: u32,
        method: Method,
        hybrid: &GpuHybridConfig,
    ) -> HybridBfsOutput {
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, g);
        let rev = if g.is_symmetric() {
            dg
        } else {
            DeviceGraph::upload(&mut gpu, &g.reverse())
        };
        run_bfs_hybrid(
            &mut gpu,
            &dg,
            &rev,
            src,
            method,
            &ExecConfig::default(),
            hybrid,
        )
        .unwrap()
    }

    #[test]
    fn correct_on_symmetric_datasets() {
        for d in [
            Dataset::SmallWorld,
            Dataset::RoadNet,
            Dataset::LiveJournalLike,
        ] {
            let g = d.build(Scale::Tiny);
            let src = d.source(&g);
            let want = bfs_levels(&g, src);
            for m in [Method::Baseline, Method::warp(8)] {
                let out = run_on(&g, src, m, &GpuHybridConfig::default());
                assert_eq!(out.bfs.levels, want, "{} / {}", d.name(), m.label());
            }
        }
    }

    #[test]
    fn correct_on_directed_graphs() {
        for d in [Dataset::Rmat, Dataset::WikiTalkLike] {
            let g = d.build(Scale::Tiny);
            let src = d.source(&g);
            let want = bfs_levels(&g, src);
            let out = run_on(&g, src, Method::warp(8), &GpuHybridConfig::default());
            assert_eq!(out.bfs.levels, want, "{}", d.name());
        }
    }

    #[test]
    fn forced_bottom_up_is_correct() {
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        let src = Dataset::SmallWorld.source(&g);
        let want = bfs_levels(&g, src);
        // Zero thresholds force bottom-up from level 1 onward.
        let hybrid = GpuHybridConfig {
            alpha: 1_000_000,
            beta: u32::MAX,
        };
        let out = run_on(&g, src, Method::warp(4), &hybrid);
        assert_eq!(out.bfs.levels, want);
        assert!(
            out.directions
                .iter()
                .skip(1)
                .any(|&d| d == Direction::BottomUp),
            "{:?}",
            out.directions
        );
    }

    #[test]
    fn small_world_switches_directions() {
        let g = Dataset::SmallWorld.build(Scale::Tiny);
        let src = Dataset::SmallWorld.source(&g);
        let out = run_on(&g, src, Method::warp(8), &GpuHybridConfig::default());
        assert!(out.directions.contains(&Direction::TopDown));
        assert!(
            out.directions.contains(&Direction::BottomUp),
            "{:?}",
            out.directions
        );
    }

    #[test]
    fn mesh_stays_top_down() {
        let g = Dataset::RoadNet.build(Scale::Tiny);
        let out = run_on(&g, 0, Method::Baseline, &GpuHybridConfig::default());
        assert!(
            out.directions.iter().all(|&d| d == Direction::TopDown),
            "thin mesh frontiers never justify bottom-up"
        );
    }

    #[test]
    fn bottom_up_reduces_edge_work_on_dense_random() {
        // On a short-diameter random graph the last top-down level expands
        // a huge frontier whose targets are almost all already seen;
        // bottom-up replaces it with cheap parent checks.
        let g = Dataset::Random.build(Scale::Tiny).symmetrize();
        let src = 0u32;
        // beta = 1 requires frontier > n, which never holds: pure top-down.
        let pure = run_on(
            &g,
            src,
            Method::warp(8),
            &GpuHybridConfig { alpha: 14, beta: 1 },
        );
        assert!(pure.directions.iter().all(|&d| d == Direction::TopDown));
        let hybrid = run_on(&g, src, Method::warp(8), &GpuHybridConfig::default());
        assert_eq!(pure.bfs.levels, hybrid.bfs.levels);
        assert!(
            hybrid.bfs.run.stats.mem_instructions < pure.bfs.run.stats.mem_instructions,
            "hybrid {} vs pure {}",
            hybrid.bfs.run.stats.mem_instructions,
            pure.bfs.run.stats.mem_instructions
        );
    }
}
