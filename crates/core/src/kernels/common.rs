//! Building blocks shared by all graph kernels: masked adjacency-range
//! loads, the two neighbor-iteration disciplines (per-thread scalar vs.
//! virtual-warp strided), outlier deferral, and the block-cooperative
//! outlier kernel skeleton.
//!
//! The two neighbor loops are the whole story of the paper in miniature:
//!
//! * [`scalar_neighbor_loop`] — each lane walks its *own* vertex's
//!   adjacency list one edge per iteration. The warp iterates until its
//!   slowest lane finishes (intra-warp imbalance) and each iteration's
//!   column loads come from 32 unrelated lists (scattered transactions).
//! * [`vw_neighbor_loop`] — the K lanes of each virtual warp stride
//!   together over *one* list. Trip count drops to `ceil(deg/K)`;
//!   consecutive lanes read consecutive columns (coalesced).

use crate::device_graph::DeviceGraph;
use crate::vwarp::VwLayout;
use maxwarp_simt::{DevPtr, Lanes, Mask, WarpCtx, WARP_SIZE};

/// Load `(start, end)` adjacency offsets for the active vertices.
pub(crate) fn load_row_range(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    m: Mask,
    vids: &Lanes<u32>,
) -> (Lanes<u32>, Lanes<u32>) {
    let start = w.ld(m, g.row_offsets, vids);
    let vplus = w.add_scalar(m, vids, 1);
    let end = w.ld(m, g.row_offsets, &vplus);
    (start, end)
}

/// [`load_row_range`] with the loads optionally routed through the
/// read-only cache (texture path).
pub(crate) fn load_row_range_opt(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    m: Mask,
    vids: &Lanes<u32>,
    cached: bool,
) -> (Lanes<u32>, Lanes<u32>) {
    if !cached {
        return load_row_range(w, g, m, vids);
    }
    let start = w.ld_cached(m, g.row_offsets, vids);
    let vplus = w.add_scalar(m, vids, 1);
    let end = w.ld_cached(m, g.row_offsets, &vplus);
    (start, end)
}

/// Read column indices at `i`, optionally through the read-only cache.
pub(crate) fn ld_cols_opt(
    w: &mut WarpCtx<'_>,
    g: &DeviceGraph,
    act: Mask,
    i: &Lanes<u32>,
    cached: bool,
) -> Lanes<u32> {
    if cached {
        w.ld_cached(act, g.col_indices, i)
    } else {
        w.ld(act, g.col_indices, i)
    }
}

/// Per-thread neighbor iteration (the baseline discipline): every active
/// lane advances through its own `[start, end)` range one edge at a time.
/// `body(w, act, i)` runs once per iteration with the live mask and each
/// lane's current edge index.
pub(crate) fn scalar_neighbor_loop(
    w: &mut WarpCtx<'_>,
    m: Mask,
    start: &Lanes<u32>,
    end: &Lanes<u32>,
    mut body: impl FnMut(&mut WarpCtx<'_>, Mask, &Lanes<u32>),
) {
    let mut i = *start;
    let mut act = w.lt(m, &i, end);
    while act.any() {
        body(w, act, &i);
        i = w.add_scalar(act, &i, 1);
        act = w.lt(act, &i, end);
    }
}

/// Virtual-warp-strided neighbor iteration (the paper's SIMD phase): the K
/// lanes of each virtual warp cover `[start + lane_in_vw, end)` in steps of
/// K.
pub(crate) fn vw_neighbor_loop(
    w: &mut WarpCtx<'_>,
    layout: &VwLayout,
    m: Mask,
    start: &Lanes<u32>,
    end: &Lanes<u32>,
    mut body: impl FnMut(&mut WarpCtx<'_>, Mask, &Lanes<u32>),
) {
    let k = layout.vw.k();
    let mut i = w.add(m, start, &layout.lane_in_vw);
    let mut act = w.lt(m, &i, end);
    while act.any() {
        body(w, act, &i);
        i = w.add_scalar(act, &i, k);
        act = w.lt(act, &i, end);
    }
}

/// Defer high-degree vertices: among the active vertices, those with
/// `degree >= threshold` are appended (by their virtual warp's leader lane)
/// to the global outlier queue and removed from the returned mask.
#[allow(clippy::too_many_arguments)]
pub(crate) fn defer_outliers(
    w: &mut WarpCtx<'_>,
    layout: &VwLayout,
    m: Mask,
    vids: &Lanes<u32>,
    start: &Lanes<u32>,
    end: &Lanes<u32>,
    threshold: u32,
    queue: DevPtr<u32>,
    qcount: DevPtr<u32>,
) -> Mask {
    let deg = w.alu2(m, end, start, |e, s| e.wrapping_sub(s));
    let mdef = w.alu_pred(m, &deg, |d| d >= threshold);
    if mdef.any() {
        let leaders = mdef & layout.leaders;
        let slot = w.atomic_add(leaders, qcount, &Lanes::splat(0), &Lanes::splat(1u32));
        w.st(leaders, queue, &slot, vids);
    }
    m.andnot(mdef)
}

/// Block-cooperative processing of the outlier queue: block `b` handles
/// queue entries `b, b + grid, ...`; all `block_threads` lanes of the block
/// stride together over the vertex's adjacency list. `body(w, act, i)` is
/// the per-edge action.
///
/// Returns a kernel closure for `Gpu::launch`.
pub(crate) fn outlier_kernel<'k>(
    g: DeviceGraph,
    queue: DevPtr<u32>,
    qcount_host: u32,
    body: impl Fn(&mut WarpCtx<'_>, Mask, &Lanes<u32>) + 'k,
) -> impl Fn(&mut maxwarp_simt::BlockCtx<'_>) + 'k {
    move |b: &mut maxwarp_simt::BlockCtx<'_>| {
        let bid = b.block_id();
        let stride = b.num_blocks();
        let bthreads = b.threads_per_block();
        let mut qi = bid;
        while qi < qcount_host {
            b.phase(|w| {
                let v = w.ld_uniform(Mask::FULL, queue, qi);
                let s = w.ld_uniform(Mask::FULL, g.row_offsets, v);
                let e = w.ld_uniform(Mask::FULL, g.row_offsets, v + 1);
                // Block-strided edge indices: warp w covers
                // s + w*32 + lane, stepping block_threads.
                let base = w.id().warp_in_block * WARP_SIZE as u32;
                let offs = Lanes::from_fn(|l| base + l as u32);
                let mut i = w.alu1(Mask::FULL, &offs, |o| s.wrapping_add(o));
                let endv = Lanes::splat(e);
                let mut act = w.lt(Mask::FULL, &i, &endv);
                while act.any() {
                    body(w, act, &i);
                    i = w.add_scalar(act, &i, bthreads);
                    act = w.lt(act, &i, &endv);
                }
            });
            qi += stride;
        }
    }
}

/// Vertices-per-warp-pass for a layout (`32 / K`).
pub(crate) fn vertices_per_pass(layout: &VwLayout) -> u32 {
    layout.vw.per_physical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwarp::VirtualWarp;
    use maxwarp_graph::Csr;
    use maxwarp_simt::{Gpu, GpuConfig, TaskSchedule};

    fn setup() -> (Gpu, DeviceGraph, Csr) {
        // Vertex 0: degree 5; vertex 1: degree 0; vertex 2: degree 2.
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 1), (2, 0), (2, 4)]);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        (gpu, dg, g)
    }

    #[test]
    fn row_range_loads() {
        let (mut gpu, dg, g) = setup();
        let out_s = gpu.mem.alloc::<u32>(8);
        let out_e = gpu.mem.alloc::<u32>(8);
        gpu.launch_warp_tasks(1, 32, 1, TaskSchedule::StaticBlocked, |w, _| {
            let vids = w.lane_ids();
            let m = w.lt_scalar(Mask::FULL, &vids, dg.n);
            let (s, e) = load_row_range(w, &dg, m, &vids);
            w.st(m, out_s, &vids, &s);
            w.st(m, out_e, &vids, &e);
        })
        .unwrap();
        let s = gpu.mem.download(out_s);
        let e = gpu.mem.download(out_e);
        for v in 0..5u32 {
            assert_eq!(e[v as usize] - s[v as usize], g.degree(v), "vertex {v}");
        }
    }

    #[test]
    fn scalar_loop_visits_every_edge_once() {
        let (mut gpu, dg, g) = setup();
        let visits = gpu.mem.alloc::<u32>(dg.m);
        gpu.launch_warp_tasks(1, 32, 1, TaskSchedule::StaticBlocked, |w, _| {
            let vids = w.lane_ids();
            let m = w.lt_scalar(Mask::FULL, &vids, dg.n);
            let (s, e) = load_row_range(w, &dg, m, &vids);
            scalar_neighbor_loop(w, m, &s, &e, |w, act, i| {
                let _ = w.atomic_add(act, visits, i, &Lanes::splat(1u32));
            });
        })
        .unwrap();
        assert_eq!(gpu.mem.download(visits), vec![1u32; g.num_edges() as usize]);
    }

    #[test]
    fn vw_loop_visits_every_edge_once() {
        for k in [1u32, 2, 4, 8, 32] {
            let (mut gpu, dg, g) = setup();
            let layout = VwLayout::new(VirtualWarp::new(k));
            let visits = gpu.mem.alloc::<u32>(dg.m);
            let vpp = vertices_per_pass(&layout);
            gpu.launch_warp_tasks(1, 32, 1, TaskSchedule::StaticBlocked, |w, _| {
                let mut base = 0u32;
                while base < dg.n {
                    let vids = layout.task_ids(base);
                    let m = w.lt_scalar(Mask::FULL, &vids, dg.n);
                    let (s, e) = load_row_range(w, &dg, m, &vids);
                    vw_neighbor_loop(w, &layout, m, &s, &e, |w, act, i| {
                        let _ = w.atomic_add(act, visits, i, &Lanes::splat(1u32));
                    });
                    base += vpp;
                }
            })
            .unwrap();
            assert_eq!(
                gpu.mem.download(visits),
                vec![1u32; g.num_edges() as usize],
                "k={k}"
            );
        }
    }

    #[test]
    fn vw_loop_has_fewer_iterations_than_scalar_on_skew() {
        // Vertex 0 has degree 5, others small: scalar loop runs 5
        // iterations; vw32 runs ceil(5/32)=1 per vertex group.
        let (mut gpu, dg, _) = setup();
        let s_scalar = gpu
            .launch_warp_tasks(1, 32, 1, TaskSchedule::StaticBlocked, |w, _| {
                let vids = w.lane_ids();
                let m = w.lt_scalar(Mask::FULL, &vids, dg.n);
                let (s, e) = load_row_range(w, &dg, m, &vids);
                scalar_neighbor_loop(w, m, &s, &e, |w, act, _| w.alu_nop(act));
            })
            .unwrap();
        let (mut gpu2, dg2, _) = setup();
        let layout = VwLayout::new(VirtualWarp::new(32));
        let s_vw = gpu2
            .launch_warp_tasks(1, 32, 1, TaskSchedule::StaticBlocked, |w, _| {
                for base in 0..dg2.n {
                    let vids = layout.task_ids(base);
                    let m = w.lt_scalar(Mask::FULL, &vids, dg2.n);
                    let (s, e) = load_row_range(w, &dg2, m, &vids);
                    vw_neighbor_loop(w, &layout, m, &s, &e, |w, act, _| w.alu_nop(act));
                }
            })
            .unwrap();
        // Both visit all edges, but the scalar version's *loop* section has
        // more iterations; compare the per-task instruction counts loosely.
        assert!(s_scalar.instructions > 0 && s_vw.instructions > 0);
        // Scalar: 5 iterations of the while loop; vw32: 5 vertex groups with
        // <= 1 iteration each but more per-group overhead. The discriminator
        // is lane utilization in the loop: scalar's tail iterations have 1
        // active lane.
        assert!(s_scalar.lane_utilization() < s_vw.lane_utilization());
    }

    #[test]
    fn defer_outliers_splits_correctly() {
        let (mut gpu, dg, _) = setup();
        let queue = gpu.mem.alloc::<u32>(dg.n);
        let qcount = gpu.mem.alloc::<u32>(1);
        let layout = VwLayout::new(VirtualWarp::new(8));
        let kept_out = gpu.mem.alloc::<u32>(1);
        gpu.launch_warp_tasks(1, 32, 1, TaskSchedule::StaticBlocked, |w, _| {
            let vids = layout.task_ids(0); // vertices 0..4 across 4 vws
            let m = w.lt_scalar(Mask::FULL, &vids, dg.n);
            let (s, e) = load_row_range(w, &dg, m, &vids);
            // Threshold 3: only vertex 0 (degree 5) defers.
            let kept = defer_outliers(w, &layout, m, &vids, &s, &e, 3, queue, qcount);
            w.st_uniform(Mask::FULL, kept_out, 0, kept.count());
        })
        .unwrap();
        assert_eq!(gpu.mem.read(qcount, 0), 1);
        assert_eq!(gpu.mem.read(queue, 0), 0); // vertex 0 deferred
                                               // 8 lanes of vw 0 removed from a 32-lane valid mask over 4 vertices.
        assert_eq!(gpu.mem.read(kept_out, 0), 24);
    }

    #[test]
    fn outlier_kernel_covers_all_edges_of_queued_vertices() {
        let (mut gpu, dg, g) = setup();
        // Queue vertices 0 and 2 manually.
        let queue = gpu.mem.alloc_from(&[0u32, 2]);
        let visits = gpu.mem.alloc::<u32>(dg.m);
        let k = outlier_kernel(dg, queue, 2, move |w, act, i| {
            let _ = w.atomic_add(act, visits, i, &Lanes::splat(1u32));
        });
        gpu.launch(2, 64, &k).unwrap();
        let v = gpu.mem.download(visits);
        // Edges of vertices 0 (rows 0..5) and 2 (rows 5..7) visited once.
        assert_eq!(v, vec![1u32; g.num_edges() as usize]);
    }
}
