//! Profiling must be a pure observer: for every kernel in the sweep
//! matrix, a profiled run must report byte-identical `KernelStats` (and
//! therefore identical cycles) to an unprofiled run. The profiler only
//! reads the ops the functional executor already traced — it never adds,
//! reorders, or re-times work.

use maxwarp::AlgoRun;
use maxwarp::{
    run_betweenness, run_bfs, run_bfs_hybrid, run_bfs_queue, run_cc, run_coloring, run_kcore,
    run_msbfs, run_pagerank, run_spmv, run_sssp, run_triangles, DeviceGraph, ExecConfig,
    GpuHybridConfig, Method,
};
use maxwarp_graph::{random_weights, Csr, Dataset, Orientation, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn gpu(profile: bool) -> Gpu {
    let mut cfg = GpuConfig::tiny_test();
    cfg.profile = profile;
    Gpu::new(cfg)
}

/// Run `f` once plain and once profiled; the stats must match exactly.
fn assert_identical(label: &str, f: impl Fn(&mut Gpu) -> AlgoRun) {
    let plain = f(&mut gpu(false));
    let mut profiled_gpu = gpu(true);
    profiled_gpu.set_profile_context(label);
    let profiled = f(&mut profiled_gpu);
    assert_eq!(
        plain.stats, profiled.stats,
        "{label}: profiling changed KernelStats"
    );
    assert_eq!(
        plain.iterations, profiled.iterations,
        "{label}: profiling changed iteration count"
    );
    // And the profiler actually observed the run.
    let report = profiled_gpu.profile_report().expect("profiler on");
    assert!(!report.sites.is_empty(), "{label}: no sites recorded");
    assert_eq!(
        report.total_cycles, plain.stats.cycles,
        "{label}: profile cycle total disagrees with the run"
    );
}

#[test]
fn every_kernel_profiles_byte_identically() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let src = (0..g.num_vertices())
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0);
    let sym = g.symmetrize();
    let rev = g.reverse();
    let weights = random_weights(&g, 15, 11);
    let values: Vec<f32> = weights.iter().map(|&w| w as f32).collect();
    let x = vec![1.0f32; g.num_vertices() as usize];
    let bc_sources: Vec<u32> = (0..4).collect();
    let ms_sources: Vec<u32> = (0..32).collect();
    let exec = ExecConfig::default();

    for method in [Method::Baseline, Method::warp(8)] {
        let m = method;
        let tag = |k: &str| format!("{k}/rmat [{}]", m.label());
        let up = |gpu: &mut Gpu, g: &Csr| DeviceGraph::upload(gpu, g);

        assert_identical(&tag("bfs"), |gpu| {
            let dg = up(gpu, &g);
            run_bfs(gpu, &dg, src, m, &exec).unwrap().run
        });
        assert_identical(&tag("bfs_queue"), |gpu| {
            let dg = up(gpu, &g);
            run_bfs_queue(gpu, &dg, src, m, &exec).unwrap().run
        });
        assert_identical(&tag("bfs_hybrid"), |gpu| {
            let dg = up(gpu, &g);
            let drev = up(gpu, &rev);
            run_bfs_hybrid(gpu, &dg, &drev, src, m, &exec, &GpuHybridConfig::default())
                .unwrap()
                .bfs
                .run
        });
        assert_identical(&tag("sssp"), |gpu| {
            let dg = DeviceGraph::upload_weighted(gpu, &g, &weights);
            run_sssp(gpu, &dg, src, m, &exec).unwrap().run
        });
        assert_identical(&tag("cc"), |gpu| {
            let dg = up(gpu, &sym);
            run_cc(gpu, &dg, m, &exec).unwrap().run
        });
        assert_identical(&tag("pagerank"), |gpu| {
            let dg = up(gpu, &g);
            run_pagerank(gpu, &dg, 3, 0.85, m, &exec).unwrap().run
        });
        assert_identical(&tag("betweenness"), |gpu| {
            let dg = up(gpu, &g);
            run_betweenness(gpu, &dg, &bc_sources, m, &exec)
                .unwrap()
                .run
        });
        assert_identical(&tag("triangles"), |gpu| {
            run_triangles(gpu, &sym, m, &exec, Orientation::ByDegree)
                .unwrap()
                .run
        });
        assert_identical(&tag("coloring"), |gpu| {
            let dg = up(gpu, &sym);
            run_coloring(gpu, &dg, m, &exec).unwrap().run
        });
        assert_identical(&tag("kcore"), |gpu| {
            let dg = up(gpu, &sym);
            run_kcore(gpu, &dg, m, &exec).unwrap().run
        });
        assert_identical(&tag("msbfs"), |gpu| {
            let dg = up(gpu, &g);
            run_msbfs(gpu, &dg, &ms_sources, m, &exec).unwrap().run
        });
        assert_identical(&tag("spmv"), |gpu| {
            let dg = up(gpu, &g);
            run_spmv(gpu, &dg, &values, &x, m, &exec).unwrap().run
        });
    }
}
