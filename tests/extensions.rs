//! Integration tests for the extension features: cached loads, frontier
//! queues, hybrid CPU BFS, betweenness, triangles, and permutations —
//! exercised together across crates.

use maxwarp::{
    run_betweenness, run_bfs, run_bfs_queue, run_triangles, DeviceGraph, ExecConfig, Method,
};
use maxwarp_cpu::{bfs_hybrid, HybridConfig};
use maxwarp_graph::{
    apply_permutation, count_triangles, random_permutation, reference, Dataset, Orientation, Scale,
};
use maxwarp_simt::{Gpu, GpuConfig};

#[test]
fn cached_loads_do_not_change_results() {
    for d in [Dataset::Rmat, Dataset::WikiTalkLike, Dataset::RoadNet] {
        let g = d.build(Scale::Tiny);
        let src = d.source(&g);
        let want = reference::bfs_levels(&g, src);
        for m in [Method::Baseline, Method::warp(8)] {
            let exec = ExecConfig {
                cached_graph_loads: true,
                ..ExecConfig::default()
            };
            let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out = run_bfs(&mut gpu, &dg, src, m, &exec).unwrap();
            assert_eq!(out.levels, want, "{} / {}", d.name(), m.label());
            assert!(
                out.run.stats.cached_load_instructions > 0,
                "cached path must actually be used"
            );
            assert!(out.run.stats.cache_hit_rate() > 0.0);
        }
    }
}

#[test]
fn cached_loads_reduce_transactions_and_cycles() {
    let d = Dataset::LiveJournalLike;
    let g = d.build(Scale::Tiny);
    let src = d.source(&g);
    let run_with = |cached: bool| {
        let exec = ExecConfig {
            cached_graph_loads: cached,
            ..ExecConfig::default()
        };
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        run_bfs(&mut gpu, &dg, src, Method::Baseline, &exec).unwrap()
    };
    let plain = run_with(false);
    let cached = run_with(true);
    assert!(cached.run.stats.mem_transactions < plain.run.stats.mem_transactions);
    assert!(cached.run.cycles() < plain.run.cycles());
}

#[test]
fn queue_and_scan_bfs_agree_everywhere() {
    for d in Dataset::ALL {
        let g = d.build(Scale::Tiny);
        let src = d.source(&g);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let scan = run_bfs(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();
        let queue =
            run_bfs_queue(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();
        assert_eq!(scan.levels, queue.levels, "{}", d.name());
    }
}

#[test]
fn hybrid_cpu_bfs_matches_gpu() {
    for d in [Dataset::SmallWorld, Dataset::Random] {
        let g = d.build(Scale::Tiny);
        let src = d.source(&g);
        let rev = g.reverse();
        let (cpu, _) = bfs_hybrid(&g, &rev, src, &HybridConfig::default());
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_bfs(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();
        assert_eq!(cpu, out.levels, "{}", d.name());
    }
}

#[test]
fn triangles_invariant_under_relabeling() {
    let g = Dataset::SmallWorld.build(Scale::Tiny);
    let want = count_triangles(&g);
    let perm = random_permutation(g.num_vertices(), 99);
    let pg = apply_permutation(&g, &perm);
    assert_eq!(count_triangles(&pg), want, "host count");
    let mut gpu = Gpu::new(GpuConfig::tiny_test());
    let out = run_triangles(
        &mut gpu,
        &pg,
        Method::warp(8),
        &ExecConfig::default(),
        Orientation::ByDegree,
    )
    .unwrap();
    assert_eq!(out.count, want, "device count on relabeled graph");
}

#[test]
fn betweenness_agrees_with_reference_cross_crate() {
    let g = Dataset::Random.build(Scale::Tiny);
    let sources = [0u32, 9, 500];
    let want = reference::betweenness(&g, &sources);
    let mut gpu = Gpu::new(GpuConfig::tiny_test());
    let dg = DeviceGraph::upload(&mut gpu, &g);
    let out = run_betweenness(
        &mut gpu,
        &dg,
        &sources,
        Method::warp(16),
        &ExecConfig::default(),
    )
    .unwrap();
    for (v, w) in want.iter().enumerate() {
        let err = (out.bc[v] as f64 - w).abs() / w.abs().max(1.0);
        assert!(err < 1e-3, "vertex {v}: {} vs {}", out.bc[v], w);
    }
}

#[test]
fn bfs_levels_invariant_under_relabeling_on_device() {
    let d = Dataset::Rmat;
    let g = d.build(Scale::Tiny);
    let src = d.source(&g);
    let perm = random_permutation(g.num_vertices(), 123);
    let pg = apply_permutation(&g, &perm);

    let mut gpu = Gpu::new(GpuConfig::tiny_test());
    let dg = DeviceGraph::upload(&mut gpu, &g);
    let a = run_bfs(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();

    let mut gpu2 = Gpu::new(GpuConfig::tiny_test());
    let dg2 = DeviceGraph::upload(&mut gpu2, &pg);
    let b = run_bfs(
        &mut gpu2,
        &dg2,
        perm[src as usize],
        Method::warp(8),
        &ExecConfig::default(),
    )
    .unwrap();

    for (v, &p) in perm.iter().enumerate() {
        assert_eq!(a.levels[v], b.levels[p as usize], "vertex {v}");
    }
}
