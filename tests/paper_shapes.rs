//! The DESIGN.md "expected-shape criteria": the qualitative results the
//! paper reports, asserted as tests (at Tiny scale so the suite stays
//! fast; the harness binaries reproduce the full-scale numbers).

use maxwarp::{run_bfs, DeviceGraph, ExecConfig, Method, VirtualWarp, WarpCentricOpts};
use maxwarp_graph::{Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn bfs(g: &maxwarp_graph::Csr, src: u32, m: Method) -> maxwarp::BfsOutput {
    let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
    let dg = DeviceGraph::upload(&mut gpu, g);
    run_bfs(&mut gpu, &dg, src, m, &ExecConfig::default()).unwrap()
}

fn best_k(g: &maxwarp_graph::Csr, src: u32) -> (u32, u64) {
    VirtualWarp::ALL
        .iter()
        .map(|vw| (vw.k(), bfs(g, src, Method::warp(vw.k())).run.cycles()))
        .min_by_key(|&(_, c)| c)
        .unwrap()
}

/// F2: the warp-centric method wins big on extreme-hub graphs.
#[test]
fn hub_graph_speedup_exceeds_2x() {
    let d = Dataset::WikiTalkLike;
    let g = d.build(Scale::Tiny);
    let src = d.source(&g);
    let base = bfs(&g, src, Method::Baseline).run.cycles();
    let (_, warp) = best_k(&g, src);
    let speedup = base as f64 / warp as f64;
    assert!(speedup > 2.0, "speedup {speedup:.2} <= 2");
}

/// F2 inverse: the warp-centric win on a low-degree mesh (if any — small
/// launches also benefit from the persistent grid) is far below the hub
/// -graph win, and large K is actively harmful there.
#[test]
fn road_graph_win_is_small_and_large_k_hurts() {
    let road = Dataset::RoadNet.build(Scale::Tiny);
    let road_src = Dataset::RoadNet.source(&road);
    let road_base = bfs(&road, road_src, Method::Baseline).run.cycles();
    let (_, road_best) = best_k(&road, road_src);
    let road_speedup = road_base as f64 / road_best as f64;

    let hub = Dataset::WikiTalkLike.build(Scale::Tiny);
    let hub_src = Dataset::WikiTalkLike.source(&hub);
    let hub_base = bfs(&hub, hub_src, Method::Baseline).run.cycles();
    let (_, hub_best) = best_k(&hub, hub_src);
    let hub_speedup = hub_base as f64 / hub_best as f64;

    assert!(
        hub_speedup > 2.0 * road_speedup,
        "hub {hub_speedup:.2} vs road {road_speedup:.2}"
    );
    // K=32 on a degree-<=4 mesh wastes 28+ lanes: it must lose to baseline.
    let k32 = bfs(&road, road_src, Method::warp(32)).run.cycles();
    assert!(
        k32 > road_base,
        "vw32 {k32} should lose to baseline {road_base} on a mesh"
    );
}

/// F3: the optimal K grows with degree variance — large for hub graphs,
/// small for meshes.
#[test]
fn best_k_tracks_degree_variance() {
    let hub = Dataset::WikiTalkLike.build(Scale::Tiny);
    let (k_hub, _) = best_k(&hub, Dataset::WikiTalkLike.source(&hub));
    let road = Dataset::RoadNet.build(Scale::Tiny);
    let (k_road, _) = best_k(&road, Dataset::RoadNet.source(&road));
    assert!(k_hub >= 16, "hub graph best K = {k_hub}");
    assert!(k_road <= 8, "road graph best K = {k_road}");
    assert!(k_hub > k_road);
}

/// F1: the baseline's SIMD-lane utilization collapses on heavy-tailed
/// graphs and the warp-centric method restores it.
#[test]
fn lane_utilization_restored_by_warp_method() {
    let d = Dataset::WikiTalkLike;
    let g = d.build(Scale::Tiny);
    let src = d.source(&g);
    let u_base = bfs(&g, src, Method::Baseline).run.stats.lane_utilization();
    let u_warp = bfs(&g, src, Method::warp(32)).run.stats.lane_utilization();
    assert!(u_base < 0.35, "baseline utilization {u_base:.2}");
    assert!(u_warp > 0.60, "warp utilization {u_warp:.2}");
}

/// F4: deferring outliers pays off where a single vertex dominates a
/// virtual warp's schedule.
#[test]
fn defer_outliers_helps_on_hub_graph() {
    let d = Dataset::WikiTalkLike;
    let g = d.build(Scale::Tiny);
    let src = d.source(&g);
    let vw = VirtualWarp::new(8);
    let plain = bfs(&g, src, Method::WarpCentric(WarpCentricOpts::plain(vw)))
        .run
        .cycles();
    let defer = bfs(
        &g,
        src,
        Method::WarpCentric(WarpCentricOpts::plain(vw).with_defer(64)),
    )
    .run
    .cycles();
    let gain = plain as f64 / defer as f64;
    assert!(gain > 1.3, "defer gain {gain:.2} <= 1.3");
}

/// F4: the techniques cost little where they cannot help.
#[test]
fn techniques_are_cheap_on_uniform_graphs() {
    let d = Dataset::Regular;
    let g = d.build(Scale::Tiny);
    let src = d.source(&g);
    let vw = VirtualWarp::new(8);
    let plain = bfs(&g, src, Method::WarpCentric(WarpCentricOpts::plain(vw)))
        .run
        .cycles();
    let both = bfs(
        &g,
        src,
        Method::WarpCentric(WarpCentricOpts::plain(vw).with_dynamic().with_defer(64)),
    )
    .run
    .cycles();
    let overhead = both as f64 / plain as f64;
    assert!(
        overhead < 1.15,
        "technique overhead {overhead:.2} on uniform graph"
    );
}

/// F7: memory gathering reduces total DRAM transactions on graphs dense
/// enough that edge traffic dominates the frontier scan (LiveJournal
/// class; on the sparse hub graph at tiny scale the scan dominates, which
/// the F7 harness reports explicitly).
#[test]
fn coalescing_improves_on_social_graph() {
    let d = Dataset::LiveJournalLike;
    let g = d.build(Scale::Tiny);
    let src = d.source(&g);
    let base = bfs(&g, src, Method::Baseline);
    let warp = bfs(&g, src, Method::warp(32));
    let bt = base.run.stats.mem_transactions as f64;
    let wt = warp.run.stats.mem_transactions as f64;
    assert!(
        wt < bt * 0.8,
        "warp transactions {wt} not well under baseline {bt}"
    );
    // Per-access coalescing quality must improve as well.
    assert!(
        warp.run.stats.tx_per_mem_instruction() < base.run.stats.tx_per_mem_instruction(),
        "tx/mem: warp {} vs baseline {}",
        warp.run.stats.tx_per_mem_instruction(),
        base.run.stats.tx_per_mem_instruction()
    );
}

/// F8: more resident warps (bigger occupancy at the same work) must not
/// slow the bandwidth-bound kernel down dramatically, and tiny blocks with
/// poor occupancy should be slowest.
#[test]
fn occupancy_matters() {
    let d = Dataset::Rmat;
    let g = d.build(Scale::Tiny);
    let src = d.source(&g);
    let run_with_block = |b: u32| {
        let exec = ExecConfig {
            block_threads: b,
            ..ExecConfig::default()
        };
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        run_bfs(&mut gpu, &dg, src, Method::warp(8), &exec)
            .unwrap()
            .run
            .cycles()
    };
    // 32-thread blocks cap at 8 resident warps/SM vs 48 for 256-thread
    // blocks: much worse latency hiding.
    let small = run_with_block(32);
    let big = run_with_block(256);
    assert!(small > big, "occupancy-starved run {small} vs {big}");
}
