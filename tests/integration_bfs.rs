//! Cross-crate integration: every BFS method variant against the CPU
//! reference and the CPU baselines, across all dataset classes.

use maxwarp::{run_bfs, DeviceGraph, ExecConfig, Method, VirtualWarp, WarpCentricOpts};
use maxwarp_cpu::{bfs_parallel, bfs_sequential};
use maxwarp_graph::{reference, Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn every_method() -> Vec<Method> {
    let mut ms = vec![Method::Baseline];
    for vw in VirtualWarp::ALL {
        ms.push(Method::warp(vw.k()));
        ms.push(Method::WarpCentric(
            WarpCentricOpts::plain(vw).with_dynamic(),
        ));
        ms.push(Method::WarpCentric(
            WarpCentricOpts::plain(vw).with_defer(48),
        ));
        ms.push(Method::WarpCentric(
            WarpCentricOpts::plain(vw).with_dynamic().with_defer(48),
        ));
    }
    ms
}

#[test]
fn full_method_matrix_matches_reference_on_all_datasets() {
    for d in Dataset::ALL {
        let g = d.build(Scale::Tiny);
        let src = d.source(&g);
        let want = reference::bfs_levels(&g, src);
        assert_eq!(bfs_sequential(&g, src), want, "{}: cpu-seq", d.name());
        assert_eq!(bfs_parallel(&g, src, 2), want, "{}: cpu-par", d.name());
        for m in every_method() {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out = run_bfs(&mut gpu, &dg, src, m, &ExecConfig::default()).unwrap();
            assert_eq!(out.levels, want, "{}: {}", d.name(), m.label());
        }
    }
}

#[test]
fn multiple_sources_agree() {
    let g = Dataset::Random.build(Scale::Tiny);
    for src in [0u32, 7, 1000, g.num_vertices() - 1] {
        let want = reference::bfs_levels(&g, src);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_bfs(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();
        assert_eq!(out.levels, want, "src={src}");
    }
}

#[test]
fn different_device_configs_same_answer_different_cycles() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let src = Dataset::Rmat.source(&g);
    let mut starved = GpuConfig::fermi_c2050();
    starved.num_sms = 2;
    starved.name = "starved-fermi".into();
    let mut cycles = Vec::new();
    for cfg in [
        GpuConfig::tiny_test(),
        GpuConfig::gtx280(),
        GpuConfig::fermi_c2050(),
        starved,
    ] {
        let mut gpu = Gpu::new(cfg);
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_bfs(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();
        assert_eq!(out.levels, reference::bfs_levels(&g, src));
        cycles.push(out.run.cycles());
    }
    // Holding everything else fixed, a 2-SM Fermi must be slower than the
    // full 14-SM part.
    assert!(
        cycles[3] > cycles[2],
        "starved {} vs full fermi {}",
        cycles[3],
        cycles[2]
    );
}

#[test]
fn exec_config_variants_are_correct() {
    let g = Dataset::WikiTalkLike.build(Scale::Tiny);
    let src = Dataset::WikiTalkLike.source(&g);
    let want = reference::bfs_levels(&g, src);
    for block_threads in [32u32, 64, 128, 256] {
        for chunk_vertices in [1u32, 8, 64, 1024] {
            let exec = ExecConfig {
                block_threads,
                chunk_vertices,
                ..ExecConfig::default()
            };
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out = run_bfs(&mut gpu, &dg, src, Method::warp(4), &exec).unwrap();
            assert_eq!(
                out.levels, want,
                "block={block_threads} chunk={chunk_vertices}"
            );
        }
    }
}

#[test]
fn deterministic_across_runs() {
    let g = Dataset::LiveJournalLike.build(Scale::Tiny);
    let src = Dataset::LiveJournalLike.source(&g);
    let run = || {
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_bfs(&mut gpu, &dg, src, Method::warp(16), &ExecConfig::default()).unwrap();
        (out.levels, out.run.cycles(), out.run.stats.instructions)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "simulation must be fully deterministic");
}

#[test]
fn levels_are_structurally_valid() {
    // Independent of the reference: BFS levels must satisfy the triangle
    // property (every edge spans at most one level, source is 0).
    let g = Dataset::SmallWorld.build(Scale::Tiny);
    let mut gpu = Gpu::new(GpuConfig::tiny_test());
    let dg = DeviceGraph::upload(&mut gpu, &g);
    let out = run_bfs(&mut gpu, &dg, 5, Method::warp(8), &ExecConfig::default()).unwrap();
    assert_eq!(out.levels[5], 0);
    for (u, v) in g.edges() {
        let (lu, lv) = (out.levels[u as usize], out.levels[v as usize]);
        if lu != u32::MAX {
            assert!(
                lv != u32::MAX,
                "reached vertex {u} has unreached neighbor {v}"
            );
            assert!(lv <= lu + 1, "edge ({u},{v}) skips levels: {lu} -> {lv}");
        }
    }
}
