//! Property-based tests spanning the workspace: arbitrary graphs in, core
//! invariants out.

use maxwarp::{
    run_bfs, run_bfs_queue, run_cc, run_coloring, run_msbfs, DeviceGraph, ExecConfig, Method,
};
use maxwarp_graph::{decode_csr, encode_csr, reference, Csr};
use maxwarp_simt::{Gpu, GpuConfig};
use proptest::prelude::*;

/// Strategy: a small arbitrary directed graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2u32..128).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..512);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_preserves_edge_multiset((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        let mut got: Vec<(u32, u32)> = g.edges().collect();
        let mut want = edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn csr_offsets_are_consistent((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        prop_assert_eq!(g.row_offsets().len() as u32, n + 1);
        let total: u64 = (0..n).map(|v| g.degree(v) as u64).sum();
        prop_assert_eq!(total, g.num_edges());
    }

    #[test]
    fn binary_io_roundtrips((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        let bytes = encode_csr(&g);
        let g2 = decode_csr(&bytes).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn reverse_is_involutive((n, edges) in arb_graph()) {
        let mut g = Csr::from_edges(n, &edges);
        g.sort_neighbors();
        let mut rr = g.reverse().reverse();
        rr.sort_neighbors();
        prop_assert_eq!(g, rr);
    }

    #[test]
    fn symmetrize_is_symmetric_and_idempotent((n, edges) in arb_graph()) {
        let s = Csr::from_edges(n, &edges).symmetrize();
        prop_assert!(s.is_symmetric());
        prop_assert_eq!(s.symmetrize(), s.clone());
    }

    #[test]
    fn gpu_bfs_matches_reference((n, edges) in arb_graph(), src_sel in 0u32..1000, k_sel in 0usize..6) {
        let g = Csr::from_edges(n, &edges);
        let src = src_sel % n;
        let k = [1u32, 2, 4, 8, 16, 32][k_sel];
        let want = reference::bfs_levels(&g, src);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_bfs(&mut gpu, &dg, src, Method::warp(k), &ExecConfig::default()).unwrap();
        prop_assert_eq!(out.levels, want);
    }

    #[test]
    fn gpu_baseline_bfs_matches_reference((n, edges) in arb_graph(), src_sel in 0u32..1000) {
        let g = Csr::from_edges(n, &edges);
        let src = src_sel % n;
        let want = reference::bfs_levels(&g, src);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_bfs(&mut gpu, &dg, src, Method::Baseline, &ExecConfig::default()).unwrap();
        prop_assert_eq!(out.levels, want);
    }

    #[test]
    fn gpu_cc_matches_union_find_on_symmetric((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges).symmetrize();
        let want = reference::connected_components(&g);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_cc(&mut gpu, &dg, Method::warp(4), &ExecConfig::default()).unwrap();
        prop_assert_eq!(out.labels, want);
    }

    #[test]
    fn queue_bfs_matches_scan_bfs((n, edges) in arb_graph(), src_sel in 0u32..1000) {
        let g = Csr::from_edges(n, &edges);
        let src = src_sel % n;
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let scan = run_bfs(&mut gpu, &dg, src, Method::warp(4), &ExecConfig::default()).unwrap();
        let queue = run_bfs_queue(&mut gpu, &dg, src, Method::warp(4), &ExecConfig::default()).unwrap();
        prop_assert_eq!(scan.levels, queue.levels);
    }

    #[test]
    fn msbfs_matches_independent_bfs((n, edges) in arb_graph(), s0 in 0u32..1000, s1 in 0u32..1000) {
        let g = Csr::from_edges(n, &edges);
        let sources = [s0 % n, s1 % n];
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_msbfs(&mut gpu, &dg, &sources, Method::warp(8), &ExecConfig::default()).unwrap();
        for (k, &s) in sources.iter().enumerate() {
            prop_assert_eq!(&out.levels[k], &reference::bfs_levels(&g, s));
        }
    }

    #[test]
    fn coloring_always_proper((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges).symmetrize();
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_coloring(&mut gpu, &dg, Method::warp(4), &ExecConfig::default()).unwrap();
        prop_assert!(reference::is_proper_coloring(&g, &out.colors));
    }

    #[test]
    fn cpu_parallel_bfs_matches_reference((n, edges) in arb_graph(), src_sel in 0u32..1000) {
        let g = Csr::from_edges(n, &edges);
        let src = src_sel % n;
        prop_assert_eq!(
            maxwarp_cpu::bfs_parallel(&g, src, 3),
            reference::bfs_levels(&g, src)
        );
    }
}
