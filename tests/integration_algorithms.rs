//! Cross-crate integration for SSSP, connected components, and PageRank:
//! GPU kernels vs the sequential references vs the multicore CPU
//! baselines.

use maxwarp::{run_cc, run_pagerank, run_sssp, DeviceGraph, ExecConfig, Method};
use maxwarp_cpu::{cc_parallel, pagerank_push, rank_linf, sssp_parallel};
use maxwarp_graph::{random_weights, reference, Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

const METHODS: [u32; 3] = [1, 8, 32];

#[test]
fn sssp_three_way_agreement() {
    for d in [
        Dataset::Random,
        Dataset::Rmat,
        Dataset::RoadNet,
        Dataset::WikiTalkLike,
    ] {
        let g = d.build(Scale::Tiny);
        let w = random_weights(&g, 12, 99);
        let src = d.source(&g);
        let want = reference::sssp_dijkstra(&g, &w, src);
        assert_eq!(sssp_parallel(&g, &w, src, 2), want, "{}: cpu", d.name());
        for k in METHODS {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &w);
            let out =
                run_sssp(&mut gpu, &dg, src, Method::warp(k), &ExecConfig::default()).unwrap();
            assert_eq!(out.dist, want, "{}: vw{}", d.name(), k);
        }
    }
}

#[test]
fn sssp_distances_satisfy_edge_relaxation() {
    // Structural check independent of the reference: at a fixpoint no edge
    // can still be relaxed.
    let d = Dataset::SmallWorld;
    let g = d.build(Scale::Tiny);
    let w = random_weights(&g, 9, 5);
    let src = d.source(&g);
    let mut gpu = Gpu::new(GpuConfig::tiny_test());
    let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &w);
    let out = run_sssp(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();
    for u in 0..g.num_vertices() {
        let du = out.dist[u as usize];
        if du == u32::MAX {
            continue;
        }
        let row = g.row_offsets()[u as usize] as usize;
        for (k, &v) in g.neighbors(u).iter().enumerate() {
            assert!(
                out.dist[v as usize] <= du.saturating_add(w[row + k]),
                "edge ({u},{v}) still relaxable"
            );
        }
    }
}

#[test]
fn cc_three_way_agreement() {
    for d in [Dataset::RoadNet, Dataset::SmallWorld] {
        let g = d.build(Scale::Tiny);
        let want = reference::connected_components(&g);
        assert_eq!(cc_parallel(&g, 2), want, "{}: cpu", d.name());
        for k in METHODS {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out = run_cc(&mut gpu, &dg, Method::warp(k), &ExecConfig::default()).unwrap();
            assert_eq!(out.labels, want, "{}: vw{}", d.name(), k);
        }
    }
}

#[test]
fn cc_on_symmetrized_directed_graphs() {
    for d in [Dataset::Rmat, Dataset::PatentsLike, Dataset::WikiTalkLike] {
        let g = d.build(Scale::Tiny).symmetrize();
        let want = reference::connected_components(&g);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_cc(&mut gpu, &dg, Method::warp(8), &ExecConfig::default()).unwrap();
        assert_eq!(out.labels, want, "{}", d.name());
    }
}

#[test]
fn pagerank_three_way_agreement() {
    for d in [
        Dataset::Random,
        Dataset::LiveJournalLike,
        Dataset::PatentsLike,
    ] {
        let g = d.build(Scale::Tiny);
        let cpu = pagerank_push(&g, 12, 0.85);
        let cpu_f64 = reference::pagerank(&g, 12, 0.85);
        for (v, (a, b)) in cpu.iter().zip(&cpu_f64).enumerate() {
            assert!((*a as f64 - b).abs() < 1e-4, "cpu f32 vs f64 at {v}");
        }
        for k in METHODS {
            let mut gpu = Gpu::new(GpuConfig::tiny_test());
            let dg = DeviceGraph::upload(&mut gpu, &g);
            let out = run_pagerank(
                &mut gpu,
                &dg,
                12,
                0.85,
                Method::warp(k),
                &ExecConfig::default(),
            )
            .unwrap();
            let err = rank_linf(&out.ranks, &cpu);
            assert!(err < 1e-4, "{}: vw{} linf={}", d.name(), k, err);
        }
    }
}

#[test]
fn pagerank_mass_conserved_across_methods() {
    let g = Dataset::WikiTalkLike.build(Scale::Tiny);
    for m in [Method::Baseline, Method::warp(32)] {
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let dg = DeviceGraph::upload(&mut gpu, &g);
        let out = run_pagerank(&mut gpu, &dg, 25, 0.85, m, &ExecConfig::default()).unwrap();
        let sum: f32 = out.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-2, "{}: sum={}", m.label(), sum);
        assert!(out.ranks.iter().all(|&r| r >= 0.0), "{}", m.label());
    }
}

#[test]
fn all_algorithms_share_one_device() {
    // One GPU, one uploaded graph, all algorithms back to back — the API
    // must support reuse without interference.
    let d = Dataset::SmallWorld;
    let g = d.build(Scale::Tiny);
    let w = random_weights(&g, 7, 3);
    let src = d.source(&g);
    let mut gpu = Gpu::new(GpuConfig::tiny_test());
    let dg = DeviceGraph::upload_weighted(&mut gpu, &g, &w);
    let exec = ExecConfig::default();

    let bfs = maxwarp::run_bfs(&mut gpu, &dg, src, Method::warp(8), &exec).unwrap();
    let sssp = run_sssp(&mut gpu, &dg, src, Method::warp(8), &exec).unwrap();
    let cc = run_cc(&mut gpu, &dg, Method::warp(8), &exec).unwrap();
    let pr = run_pagerank(&mut gpu, &dg, 5, 0.85, Method::warp(8), &exec).unwrap();

    assert_eq!(bfs.levels, reference::bfs_levels(&g, src));
    assert_eq!(sssp.dist, reference::sssp_dijkstra(&g, &w, src));
    assert_eq!(cc.labels, reference::connected_components(&g));
    assert_eq!(pr.ranks.len(), g.num_vertices() as usize);
}
