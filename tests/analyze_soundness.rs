//! Relative-soundness harness for the static analyzer: on the same
//! execution, every finding of the *dynamic* sanitizer must be contained in
//! the *static* report — same site (or the race pair's other endpoint), and
//! a kind the static abstraction maps it to. This is the formal sense in
//! which the abstract interpretation over-approximates the shadow-state
//! checker: anything the dynamic tool can observe, the static tool must
//! have predicted.

use maxwarp::{
    run_betweenness, run_bfs, run_bfs_hybrid, run_bfs_queue, run_cc, run_coloring, run_kcore,
    run_msbfs, run_pagerank, run_spmv, run_sssp, run_triangles, DeviceGraph, ExecConfig,
    GpuHybridConfig, Method,
};
use maxwarp_graph::{hub_graph, random_weights, Csr, Dataset, Orientation, Scale};
use maxwarp_simt::analyze::FindKind;
use maxwarp_simt::{DiagKind, Gpu, GpuConfig, LaunchError};

/// Static kinds that may absorb a dynamic diagnostic of the given kind.
fn allowed(kind: DiagKind) -> &'static [FindKind] {
    match kind {
        DiagKind::SharedRace
        | DiagKind::GlobalRace
        | DiagKind::ReadWriteOverlap
        | DiagKind::MixedAtomic => &[FindKind::MayRace, FindKind::DefiniteRace],
        DiagKind::DivergentShfl => &[FindKind::DivergentShfl],
        DiagKind::EmptyMaskCollective => &[FindKind::EmptyMaskCollective],
        DiagKind::UninitRead => &[FindKind::MayUninit, FindKind::UninitShared],
        DiagKind::OutOfBounds => &[FindKind::OutOfBounds],
        DiagKind::StoreCollision => &[FindKind::StoreCollision],
        DiagKind::BankConflictLint => &[FindKind::BankConflict],
        DiagKind::CoalescingLint => &[FindKind::Coalescing],
    }
}

/// Run one combo with both observers on and assert containment.
fn assert_contained(label: &str, f: impl FnOnce(&mut Gpu) -> Result<(), LaunchError>) {
    let mut cfg = GpuConfig::fermi_c2050();
    cfg.sanitize = true;
    cfg.analyze = true;
    let mut gpu = Gpu::new(cfg);
    gpu.set_sanitize_context(label);
    gpu.set_analyze_context(label);
    f(&mut gpu).unwrap_or_else(|e| panic!("{label}: launch error: {e}"));
    let san = gpu.sanitizer().expect("sanitizer on");
    let anl = gpu.analyzer().expect("analyzer on");
    if anl.suppressed() > 0 {
        // The static findings list was capped: containment against an
        // incomplete list proves nothing, and the shipped kernels stay far
        // below the cap — hitting it is itself a failure.
        panic!(
            "{label}: static findings capped ({} suppressed)",
            anl.suppressed()
        );
    }
    for d in san.diagnostics() {
        let kinds = allowed(d.kind);
        let matched = anl
            .findings()
            .iter()
            .any(|f| kinds.contains(&f.kind) && (f.site == d.site || f.other_site == Some(d.site)));
        assert!(
            matched,
            "{label}: dynamic finding not statically predicted:\n{d}\n\nstatic report:\n{}",
            anl.report()
        );
    }
}

fn sweep(gname: &str, g: &Csr) {
    let exec = ExecConfig::default();
    let src = (0..g.num_vertices())
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0);
    let sym = g.symmetrize();
    let rev = g.reverse();
    let weights = random_weights(g, 15, 11);
    let values: Vec<f32> = weights.iter().map(|&w| w as f32).collect();
    let x = vec![1.0f32; g.num_vertices() as usize];
    let bc_sources: Vec<u32> = (0..4.min(g.num_vertices())).collect();
    let ms_sources: Vec<u32> = (0..32.min(g.num_vertices())).collect();

    for m in [Method::Baseline, Method::warp(8)] {
        let l = |k: &str| format!("{k}/{gname} [{}]", m.label());
        assert_contained(&l("bfs"), |gpu| {
            let dg = DeviceGraph::upload(gpu, g);
            run_bfs(gpu, &dg, src, m, &exec).map(|_| ())
        });
        assert_contained(&l("bfs_queue"), |gpu| {
            let dg = DeviceGraph::upload(gpu, g);
            run_bfs_queue(gpu, &dg, src, m, &exec).map(|_| ())
        });
        assert_contained(&l("bfs_hybrid"), |gpu| {
            let dg = DeviceGraph::upload(gpu, g);
            let drev = DeviceGraph::upload(gpu, &rev);
            run_bfs_hybrid(gpu, &dg, &drev, src, m, &exec, &GpuHybridConfig::default()).map(|_| ())
        });
        assert_contained(&l("sssp"), |gpu| {
            let dg = DeviceGraph::upload_weighted(gpu, g, &weights);
            run_sssp(gpu, &dg, src, m, &exec).map(|_| ())
        });
        assert_contained(&l("cc"), |gpu| {
            let dg = DeviceGraph::upload(gpu, &sym);
            run_cc(gpu, &dg, m, &exec).map(|_| ())
        });
        assert_contained(&l("pagerank"), |gpu| {
            let dg = DeviceGraph::upload(gpu, g);
            run_pagerank(gpu, &dg, 5, 0.85, m, &exec).map(|_| ())
        });
        assert_contained(&l("betweenness"), |gpu| {
            let dg = DeviceGraph::upload(gpu, g);
            run_betweenness(gpu, &dg, &bc_sources, m, &exec).map(|_| ())
        });
        assert_contained(&l("triangles"), |gpu| {
            run_triangles(gpu, &sym, m, &exec, Orientation::ByDegree).map(|_| ())
        });
        assert_contained(&l("coloring"), |gpu| {
            let dg = DeviceGraph::upload(gpu, &sym);
            run_coloring(gpu, &dg, m, &exec).map(|_| ())
        });
        assert_contained(&l("kcore"), |gpu| {
            let dg = DeviceGraph::upload(gpu, &sym);
            run_kcore(gpu, &dg, m, &exec).map(|_| ())
        });
        assert_contained(&l("msbfs"), |gpu| {
            let dg = DeviceGraph::upload(gpu, g);
            run_msbfs(gpu, &dg, &ms_sources, m, &exec).map(|_| ())
        });
        assert_contained(&l("spmv"), |gpu| {
            let dg = DeviceGraph::upload(gpu, g);
            run_spmv(gpu, &dg, &values, &x, m, &exec).map(|_| ())
        });
    }
}

#[test]
fn dynamic_findings_contained_in_static_report_rmat() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    sweep("rmat", &g);
}

#[test]
fn dynamic_findings_contained_in_static_report_hub() {
    let g = hub_graph(2048, 4, 1500, 2, 7);
    sweep("hub", &g);
}

/// The containment direction is meaningful only if the static side is not
/// trivially all-findings: the shipped kernels must stay free of
/// error-severity static findings (the CI lint gate's criterion).
#[test]
fn shipped_kernels_statically_error_free() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let mut cfg = GpuConfig::fermi_c2050();
    cfg.analyze = true;
    let mut gpu = Gpu::new(cfg);
    let dg = DeviceGraph::upload(&mut gpu, &g);
    let src = Dataset::Rmat.source(&g);
    run_bfs(&mut gpu, &dg, src, Method::warp(8), &ExecConfig::default()).unwrap();
    let anl = gpu.analyzer().unwrap();
    assert!(!anl.has_errors(), "{}", anl.report());
}
